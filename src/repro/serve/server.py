"""The resilient concurrent serving layer: :class:`IcebergServer`.

One server wraps one :class:`~repro.storage.catalog.Database` and
serves many concurrent :class:`Session` objects, composing the pieces
this package provides:

* **Admission** — every execute passes the
  :class:`~repro.serve.admission.AdmissionController` (bounded
  concurrency, bounded queue, governor-headroom load shedding).
* **Plan cache** — statements are optimized once per
  ``(SQL, technique mask)`` and shared across sessions via the
  version-validated :class:`~repro.serve.plan_cache.PlanCache`;
  inserts and ANALYZE invalidate lazily through the database's version
  token.  Prepared statements are just named handles onto this cache.
* **Retry** — each call runs under the
  :class:`~repro.serve.retry.RetryPolicy`: transient typed errors
  (injected faults, admission rejections, open circuits) back off on
  the virtual clock and retry; deterministic errors surface
  immediately, always as a classified :class:`~repro.errors.ReproError`.
* **Circuit breakers** — repeated per-technique degradation events
  trip the technique's :class:`~repro.serve.circuit.CircuitBreaker`;
  while open, the server plans *without* that technique (a different
  technique mask → a different plan-cache key), probing it again after
  the recovery window.
* **Fault sites** — the serving layer observes the ``"plan-cache"``
  and ``"admission"`` sites of a session's
  :class:`~repro.testing.faults.FaultPlan`, so the soak tests can
  inject failures into the serving machinery itself, not just the
  engine underneath.

Everything is deterministic under a fixed seed and injectable clock:
no real sleeps, no wall-clock-dependent control flow.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.core.system import SmartIceberg
from repro.engine.executor import Result
from repro.engine.wcoj import WCOJTrieJoin
from repro.errors import CircuitOpenError, SessionClosedError
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.querylog import QueryLog, stable_fingerprint
from repro.serve.admission import AdmissionController
from repro.serve.circuit import CircuitBreaker
from repro.serve.plan_cache import PlanCache, PlanCacheEntry
from repro.serve.retry import BackoffSchedule, RetryPolicy
from repro.storage.catalog import Database

#: The serving layer's view of the paper's techniques, as breaker-
#: guarded units: "apriori" is the generalized a-priori rewrite;
#: "memprune" bundles memoization + pruning (they share the NLJP
#: machinery, degrade together, and are toggled together).
TECHNIQUES = ("apriori", "memprune")

FULL_MASK: FrozenSet[str] = frozenset(TECHNIQUES)


def _walk_plan(root):
    """Every operator in a plan tree, via ``children()`` (pre-order)."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())


def _breaker_for_degradation(event: str) -> Optional[str]:
    """Map a degradation-log entry to the technique breaker it charges.

    Degradation events are ``"site: reason"`` strings; a-priori events
    use sites like ``apriori[main]``, NLJP-side events use
    ``memprune``/``nljp-cache``/``cache`` sites (see
    ``Governor.degrade`` call sites).
    """
    site = event.split(":", 1)[0].strip().lower()
    if site.startswith("apriori"):
        return "apriori"
    if site.startswith(("memprune", "nljp", "cache")):
        return "memprune"
    return None


class PreparedStatement:
    """A session-scoped handle to one SQL statement.

    Preparation is *lazy*: the statement text is validated for reuse
    but optimization happens on first execution, through the shared
    plan cache — so the second execution of the same prepared
    statement (or of the same SQL from any other session) is a cache
    hit, and a data/stats change between executions transparently
    re-optimizes.
    """

    def __init__(self, session: "Session", sql: str) -> None:
        self.session = session
        self.sql = sql
        self.executions = 0

    def execute(
        self,
        params: Optional[Dict] = None,
        execution_mode: Optional[str] = None,
    ) -> Result:
        self.executions += 1
        return self.session.execute(
            self.sql, params=params, execution_mode=execution_mode
        )

    def __repr__(self) -> str:
        return f"PreparedStatement({self.sql[:40]!r}..., executions={self.executions})"


class Session:
    """One client's handle onto the server.

    Sessions are cheap (no engine state of their own) and single-
    client: per-session fault plans, deadlines, and trace profiles
    live here, while plans, caches, breakers, and admission are shared
    through the server.  A closed session refuses further work with
    :class:`~repro.errors.SessionClosedError`.
    """

    def __init__(
        self,
        server: "IcebergServer",
        session_id: str,
        fault_plan: Optional[Any] = None,
        deadline_seconds: Optional[float] = None,
    ) -> None:
        self.server = server
        self.session_id = session_id
        self.fault_plan = fault_plan
        self.deadline_seconds = deadline_seconds
        self.closed = False  # unguarded: single boolean flip in close(); a racing execute may admit one final query, which a closing client tolerates
        self.queries = 0  # guarded-by: self._lock
        self.retries = 0  # guarded-by: self._lock
        #: ``(label, QueryProfile)`` pairs from traced executions.
        self.profiles: List[Tuple[str, Any]] = []  # guarded-by: self._lock
        self._lock = threading.Lock()

    def execute(
        self,
        sql: str,
        params: Optional[Dict] = None,
        execution_mode: Optional[str] = None,
        cancel_token: Optional[Any] = None,
    ) -> Result:
        if self.closed:
            raise SessionClosedError(f"session {self.session_id!r} is closed")
        with self._lock:
            self.queries += 1
            sequence = self.queries
        return self.server._execute(
            self,
            sql,
            params=params,
            execution_mode=execution_mode,
            cancel_token=cancel_token,
            key=f"{self.session_id}:{sequence}",
        )

    def prepare(self, sql: str) -> PreparedStatement:
        if self.closed:
            raise SessionClosedError(f"session {self.session_id!r} is closed")
        return PreparedStatement(self, sql)

    def export_trace(self, path: str) -> int:
        """Write this session's traced profiles as one Chrome trace.

        Returns the number of profiles merged (0 writes nothing).
        Load the file at ``chrome://tracing`` / Perfetto; each query
        appears as its own process row.
        """
        from repro.obs.spans import merge_chrome_traces

        with self._lock:
            named = list(self.profiles)
        if not named:
            return 0
        document = merge_chrome_traces(named)
        with open(path, "w") as handle:
            json.dump(document, handle)
        return len(named)

    def close(self) -> None:
        self.closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class IcebergServer:
    """Concurrent, fault-tolerant front end over :class:`SmartIceberg`.

    The server owns one engine instance per *technique mask* (the set
    of breaker-enabled techniques), all sharing the database.  Budgets
    passed here are instance-wide totals: they are fair-shared across
    the admission slots so ``max_concurrent`` saturated sessions stay
    within the total.
    """

    def __init__(
        self,
        db: Database,
        *,
        max_concurrent: int = 8,
        max_queue: int = 16,
        queue_timeout_seconds: float = 5.0,
        headroom_floor: float = 0.0,
        plan_cache_entries: int = 64,
        max_attempts: int = 3,
        backoff: Optional[BackoffSchedule] = None,
        retry_sleep: Optional[Callable[[float], None]] = None,
        breaker_threshold: int = 3,
        breaker_recovery_seconds: float = 30.0,
        shared_nljp_cache: bool = True,
        max_rows_scanned: Optional[int] = None,
        max_join_pairs: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[MetricsRegistry] = None,
        query_log: Optional[QueryLog] = None,
        query_log_entries: int = 512,
        query_log_path: Optional[str] = None,
        **engine_kwargs: Any,
    ) -> None:
        self.db = db
        self.admission = AdmissionController(
            max_concurrent=max_concurrent,
            max_queue=max_queue,
            queue_timeout_seconds=queue_timeout_seconds,
            headroom_floor=headroom_floor,
            clock=clock,
        )
        self.plan_cache = PlanCache(max_entries=plan_cache_entries)
        self.retry = RetryPolicy(
            max_attempts=max_attempts,
            schedule=backoff or BackoffSchedule(),
            sleep=retry_sleep,
        )
        self.breakers: Dict[str, CircuitBreaker] = {
            technique: CircuitBreaker(
                technique,
                failure_threshold=breaker_threshold,
                recovery_seconds=breaker_recovery_seconds,
                clock=clock,
            )
            for technique in TECHNIQUES
        }
        self.shared_nljp_cache = shared_nljp_cache
        self._registry = registry if registry is not None else REGISTRY
        #: Structured flight recorder: one record per served execution
        #: (and per serving-layer failure).  ``python -m
        #: repro.obs.report`` summarizes it.
        self.query_log = (
            query_log
            if query_log is not None
            else QueryLog(max_entries=query_log_entries, path=query_log_path)
        )
        # Instance-wide budget totals → per-slot fair shares.
        self._engine_kwargs = dict(engine_kwargs)
        # Feedback default: *observe* — harvest estimate→actual pairs
        # without letting them move plans, the safe serving posture.
        # An explicit ``feedback=`` kwarg wins; a caller-supplied
        # ``config=`` keeps its own setting (we never override it).
        base_config = self._engine_kwargs.get("config")
        if "feedback" not in self._engine_kwargs and base_config is None:
            self._engine_kwargs["feedback"] = "observe"
        self._feedback_mode = self._engine_kwargs.get(
            "feedback",
            base_config.feedback if base_config is not None else "off",
        )
        if max_rows_scanned is not None:
            self._engine_kwargs["max_rows_scanned"] = self.admission.fair_share(
                max_rows_scanned
            )
        if max_join_pairs is not None:
            self._engine_kwargs["max_join_pairs"] = self.admission.fair_share(
                max_join_pairs
            )
        self._engines: Dict[FrozenSet[str], SmartIceberg] = {}  # guarded-by: self._engines_lock
        self._engines_lock = threading.RLock()
        self._sessions_lock = threading.Lock()
        self._session_counter = 0  # guarded-by: self._sessions_lock

    # ------------------------------------------------------------------
    def session(
        self,
        fault_plan: Optional[Any] = None,
        deadline_seconds: Optional[float] = None,
    ) -> Session:
        with self._sessions_lock:
            self._session_counter += 1
            session_id = f"session-{self._session_counter}"
        return Session(
            self,
            session_id,
            fault_plan=fault_plan,
            deadline_seconds=deadline_seconds,
        )

    def _engine(self, mask: FrozenSet[str]) -> SmartIceberg:
        """The engine instance planning with exactly ``mask`` enabled."""
        with self._engines_lock:
            engine = self._engines.get(mask)
            if engine is None:
                engine = SmartIceberg(
                    self.db,
                    apriori="apriori" in mask,
                    pruning="memprune" in mask,
                    memo="memprune" in mask,
                    cross_query_memo=(
                        self.shared_nljp_cache and "memprune" in mask
                    ),
                    **self._engine_kwargs,
                )
                self._engines[mask] = engine
            return engine

    def _technique_mask(self) -> FrozenSet[str]:
        """The techniques whose breakers currently admit execution.

        An open breaker excludes its technique from planning — the
        query still runs, just without that optimization.  Half-open
        probes *include* the technique; their outcome closes or
        re-opens the breaker.
        """
        return frozenset(
            technique
            for technique, breaker in self.breakers.items()
            if breaker.allow()
        )

    def require_technique(self, technique: str) -> None:
        """Raise :class:`CircuitOpenError` if a technique's breaker is open.

        For callers that *need* a technique (benchmark comparability,
        tests) rather than accepting the degraded mask.
        """
        breaker = self.breakers[technique]
        if breaker.state == "open" and not breaker.allow():
            raise CircuitOpenError(
                f"technique {technique!r} circuit is open",
                technique=technique,
                retry_after_seconds=breaker.retry_after_seconds(),
            )

    # ------------------------------------------------------------------
    def _execute(
        self,
        session: Session,
        sql: str,
        params: Optional[Dict],
        execution_mode: Optional[str],
        cancel_token: Optional[Any],
        key: str,
    ) -> Result:
        def attempt() -> Result:
            return self._execute_once(
                session, sql, params, execution_mode, cancel_token
            )

        def on_retry(error: BaseException, attempt_no: int, delay: float) -> None:
            with session._lock:
                session.retries += 1
            self._registry.counter(
                "repro_server_retries_total",
                "Serving-layer retry attempts by error class",
                ("error",),
            ).inc(error=type(error).__name__)

        try:
            result = self.retry.run(attempt, key=key, on_retry=on_retry)
        except Exception as error:
            self._registry.counter(
                "repro_server_queries_total",
                "Server queries by session outcome",
                ("outcome",),
            ).inc(outcome=f"error:{type(error).__name__}")
            self.query_log.append(
                session=session.session_id,
                sql_fingerprint=stable_fingerprint(sql),
                feedback_mode=self._feedback_mode,
                outcome=f"error:{type(error).__name__}",
                breaker_states={
                    technique: breaker.state
                    for technique, breaker in self.breakers.items()
                },
            )
            self._sync_serve_metrics()
            raise
        self._registry.counter(
            "repro_server_queries_total",
            "Server queries by session outcome",
            ("outcome",),
        ).inc(outcome="ok")
        return result

    def _execute_once(
        self,
        session: Session,
        sql: str,
        params: Optional[Dict],
        execution_mode: Optional[str],
        cancel_token: Optional[Any],
    ) -> Result:
        fault_plan = session.fault_plan
        if fault_plan is not None:
            # Serving-layer fault sites: raise typed injected errors
            # before the admission decision / plan-cache lookup.  The
            # returned virtual delay has no governor clock to charge at
            # this point, so only error-kind faults matter here.
            fault_plan.observe("admission")
        with self.admission.admit() as waited:
            self._registry.gauge(
                "repro_server_admission_wait_seconds",
                "Queue wait of the most recently admitted query",
            ).set(waited)
            if fault_plan is not None:
                fault_plan.observe("plan-cache")
            mask = self._technique_mask()
            try:
                entry, cache_hit = self._lookup_or_build(sql, mask)
                with entry.lock:
                    result = entry.optimized.execute(
                        params,
                        execution_mode=execution_mode,
                        cancel_token=cancel_token,
                        fault_plan=fault_plan,
                        deadline_seconds=session.deadline_seconds,
                        trace_label=f"{session.session_id}:{sql[:40]}",
                    )
            except BaseException:
                # The techniques were never fully exercised: hand back
                # any half-open probe slots without judging them.
                for technique in mask:
                    self.breakers[technique].release_probe()
                raise
            self._after_execution(
                session, sql, mask, result, waited=waited, cache_hit=cache_hit
            )
            return result

    def _live_token(self) -> Tuple[int, ...]:
        """The plan-cache validity token for the current engine setup.

        Under ``feedback="apply"`` the feedback store's version joins
        the token: a plan built from yesterday's observations is
        re-optimized once fresh observations land, so corrections
        actually reach the plans instead of being pinned out by the
        cache.
        """
        token: Tuple[int, ...] = self.db.version_token()
        if self._feedback_mode == "apply":
            token = token + (self.db.feedback.version,)
        return token

    def _lookup_or_build(
        self, sql: str, mask: FrozenSet[str]
    ) -> Tuple[PlanCacheEntry, bool]:
        """The cached (or freshly built) plan entry plus a hit flag.

        ``hit`` is ``True`` when the entry came from the shared cache
        (including waiting out another session's in-flight build) and
        ``False`` when this call was the build leader.
        """
        # Single-flight: concurrent first-touch misses on one key used
        # to optimize N times and race the store.  Now exactly one
        # session (the claim leader) builds; the rest wait on the
        # leader's latch and re-run the lookup.  A failed build still
        # releases in the finally, so waiters re-claim rather than hang.
        hit = True
        while True:
            live_token = self._live_token()
            entry = self.plan_cache.lookup(sql, mask, live_token)
            if entry is not None:
                break
            leader, latch = self.plan_cache.claim(sql, mask)
            if not leader:
                latch.wait()
                continue
            hit = False
            try:
                optimized = self._engine(mask).optimize(sql)
                if optimized.nljp is not None and self.shared_nljp_cache:
                    # The NLJP memo outlives this execution: later runs
                    # of the same cached plan hit what earlier runs
                    # stored (guarded by the entry lock and the version
                    # token).
                    if optimized.nljp.enable_memo:
                        optimized.nljp.enable_shared_cache()
                if self.shared_nljp_cache:
                    # Same contract for WCOJ trie caches anywhere in the
                    # planned tree: cached subtrees survive across
                    # executions of this prepared statement.
                    for node in _walk_plan(optimized.planned.root):
                        if isinstance(node, WCOJTrieJoin):
                            node.enable_shared_cache()
                entry = self.plan_cache.store(sql, mask, live_token, optimized)
            finally:
                self.plan_cache.release(sql, mask)
            break
        stats = self.plan_cache.stats()
        gauge = self._registry.gauge(
            "repro_server_plan_cache",
            "Shared plan cache state",
            ("stat",),
        )
        for name, value in stats.items():
            gauge.set(value, stat=name)
        return entry, hit

    def _sync_serve_metrics(self) -> None:
        """Export admission/breaker counters as registry gauges.

        The counters live inside their components' locks; the snapshot
        accessors copy them consistently, and gauges (not counters)
        carry them so re-exporting the running totals is idempotent.
        """
        admission = self._registry.gauge(
            "repro_server_admission_outcomes",
            "Admission decisions by outcome (running totals)",
            ("outcome",),
        )
        for outcome, count in self.admission.snapshot_outcomes().items():
            admission.set(count, outcome=outcome)
        transitions = self._registry.gauge(
            "repro_server_breaker_transitions",
            "Per-technique breaker state transitions (running totals)",
            ("technique", "state"),
        )
        for technique, breaker in self.breakers.items():
            for state, count in breaker.snapshot_transitions().items():
                transitions.set(count, technique=technique, state=state)

    def _plan_telemetry(self, result: Result) -> Dict[str, Any]:
        """Plan-shape and estimate-quality fields for the query log."""
        planned = result.plan
        if planned is None:
            return {}
        from repro.obs.tracer import iter_plan_nodes

        config = planned.env.config
        corrections: List[str] = []
        mis_estimates: List[Dict[str, Any]] = []
        for node in iter_plan_nodes(planned.root):
            if node.feedback_note is not None:
                corrections.append(node.feedback_note)
            q_error = node.q_error()
            if q_error is not None:
                mis_estimates.append(
                    {
                        "operator": type(node).__name__,
                        "fingerprint": node.feedback_fingerprint,
                        "est": round(float(node.estimated_rows), 1),
                        "actual": int(node.actual_rows),
                        "q_error": round(q_error, 3),
                    }
                )
        mis_estimates.sort(key=lambda entry: -entry["q_error"])
        return {
            "plan_fingerprint": stable_fingerprint(planned.explain()),
            "join_algo": config.join_algo,
            "feedback_mode": config.feedback,
            "feedback_corrections": corrections[:5],
            "worst_q_errors": mis_estimates[:3],
        }

    def _after_execution(
        self,
        session: Session,
        sql: str,
        mask: FrozenSet[str],
        result: Result,
        waited: float = 0.0,
        cache_hit: bool = False,
    ) -> None:
        # Governor feedback → admission load shedding.
        if result.governor is not None:
            self.admission.note_headroom(result.governor.headroom())
        # Degradation events → per-technique breakers.  Techniques that
        # ran clean this execution count as breaker successes (closing
        # half-open probes); techniques outside the mask are untouched.
        charged = set()
        for event in result.stats.degradations:
            technique = _breaker_for_degradation(event)
            if technique is not None and technique in mask:
                charged.add(technique)
        if charged:
            # A plan built under degradation carries the fallback shape
            # (and its degradation log) for life; drop it so the next
            # execution — possibly a half-open probe after the cause
            # cleared — re-optimizes instead of replaying the failure.
            self.plan_cache.discard(sql, mask)
        for technique in mask:
            breaker = self.breakers[technique]
            if technique in charged:
                breaker.record_failure()
                self._registry.counter(
                    "repro_server_breaker_failures_total",
                    "Per-technique degradation events observed by breakers",
                    ("technique",),
                ).inc(technique=technique)
            else:
                breaker.record_success()
        if result.profile is not None:
            with session._lock:
                session.profiles.append(
                    (f"{session.session_id}:q{session.queries}", result.profile)
                )
        self.query_log.append(
            session=session.session_id,
            sql_fingerprint=stable_fingerprint(sql),
            technique_mask=sorted(mask),
            execution_mode=result.execution_mode,
            outcome="ok",
            plan_cache_hit=cache_hit,
            admission_wait_seconds=round(waited, 6),
            latency_seconds=round(result.elapsed_seconds, 6),
            rows=len(result.rows),
            rows_scanned=result.stats.rows_scanned,
            degradations=list(result.stats.degradations),
            breaker_states={
                technique: breaker.state
                for technique, breaker in self.breakers.items()
            },
            **self._plan_telemetry(result),
        )
        self._sync_serve_metrics()
