"""SQL front end: lexer, parser, AST, and renderer."""

from repro.sql.parser import parse, parse_expression
from repro.sql.render import render

__all__ = ["parse", "parse_expression", "render"]
