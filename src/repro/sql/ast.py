"""AST node definitions for the supported SQL subset.

All nodes are frozen dataclasses, so they hash/compare structurally.
This matters: the Smart-Iceberg rewriter builds new queries by
substituting sub-trees, and the iceberg analyzer compares expressions
(e.g. "is this HAVING aggregate over attributes of L only?") by value.

Helper functions at the bottom provide generic traversal
(:func:`walk`), substitution (:func:`transform`), and column
collection (:func:`column_refs`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Callable, Iterator, Optional, Tuple, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Marker base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: number, string, boolean, or NULL (``value is None``)."""

    value: Any


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly-qualified column reference ``table.column``."""

    table: Optional[str]
    column: str

    def qualified(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``alias.*`` — only valid in SELECT lists and COUNT(*)."""

    table: Optional[str] = None


@dataclass(frozen=True)
class Parameter(Expr):
    """A named parameter ``:name``, bound at execution time.

    NLJP's inner and pruning queries are parameterized by the current
    binding; this node is how those bindings appear in generated SQL.
    """

    name: str


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Binary operator application.

    ``op`` is one of ``= <> < <= > >= + - * / % AND OR ||``.
    """

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operator: ``NOT`` or ``-``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class FuncCall(Expr):
    """Function or aggregate call.

    Aggregates are COUNT/SUM/AVG/MIN/MAX (name upper-cased); COUNT may
    take a :class:`Star` argument.  ``distinct`` covers
    ``COUNT(DISTINCT a)`` and friends.
    """

    name: str
    args: Tuple[Expr, ...]
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name in AGGREGATE_FUNCTIONS


AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


@dataclass(frozen=True)
class TupleExpr(Expr):
    """Row constructor ``(a, b, ...)`` used on the left of IN."""

    items: Tuple[Expr, ...]


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (literal, literal, ...)``."""

    needle: Expr
    items: Tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)`` — the a-priori reducer's shape."""

    needle: Expr
    subquery: "Select"
    negated: bool = False


@dataclass(frozen=True)
class ExistsSubquery(Expr):
    """``[NOT] EXISTS (SELECT ...)`` — used by generated pruning SQL."""

    subquery: "Select"
    negated: bool = False


@dataclass(frozen=True)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    needle: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class CaseExpr(Expr):
    """Searched CASE: ``CASE WHEN c THEN v ... [ELSE e] END``."""

    whens: Tuple[Tuple[Expr, Expr], ...]
    default: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One item of a SELECT list; ``alias`` may be None."""

    expr: Expr
    alias: Optional[str] = None


class TableExpr:
    """Marker base class for FROM items."""

    __slots__ = ()


@dataclass(frozen=True)
class NamedTable(TableExpr):
    """A base table or CTE reference, with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class DerivedTable(TableExpr):
    """A subquery in FROM; SQL requires an alias and so do we."""

    query: "Select"
    alias: str

    @property
    def binding_name(self) -> str:
        return self.alias


@dataclass(frozen=True)
class JoinedTable(TableExpr):
    """An explicit ``A JOIN B ON cond`` / ``A NATURAL JOIN B`` item.

    Only inner semantics are supported; the planner flattens these into
    the query's conjunctive WHERE.
    """

    left: TableExpr
    right: TableExpr
    natural: bool = False
    condition: Optional[Expr] = None


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class Select:
    """A single SELECT block (Listing 5's generic shape and beyond)."""

    items: Tuple[SelectItem, ...]
    from_items: Tuple[TableExpr, ...] = ()
    where: Optional[Expr] = None
    group_by: Tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False


@dataclass(frozen=True)
class CommonTableExpr:
    """One WITH entry: ``name [(col, ...)] AS (SELECT ...)``."""

    name: str
    query: Select
    columns: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Query:
    """Top-level statement: optional CTE list plus a SELECT body."""

    body: Select
    ctes: Tuple[CommonTableExpr, ...] = ()

    @classmethod
    def of(cls, body: Select) -> "Query":
        return cls(body=body)


Statement = Union[Query, Select]


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------

_CHILD_CACHE: dict = {}


def _node_fields(node: Any) -> Tuple[str, ...]:
    cls = type(node)
    cached = _CHILD_CACHE.get(cls)
    if cached is None:
        cached = tuple(f.name for f in fields(cls))
        _CHILD_CACHE[cls] = cached
    return cached


def _is_node(value: Any) -> bool:
    return isinstance(
        value,
        (Expr, Select, Query, SelectItem, TableExpr, OrderItem, CommonTableExpr),
    )


def children(node: Any) -> Iterator[Any]:
    """Yield direct AST children of ``node`` (flattening tuples)."""
    for name in _node_fields(node):
        value = getattr(node, name)
        if _is_node(value):
            yield value
        elif isinstance(value, tuple):
            for item in value:
                if _is_node(item):
                    yield item
                elif isinstance(item, tuple):  # CASE whens
                    for sub in item:
                        if _is_node(sub):
                            yield sub


def walk(node: Any, into_subqueries: bool = True) -> Iterator[Any]:
    """Pre-order traversal of the AST rooted at ``node``.

    When ``into_subqueries`` is false, nested :class:`Select` nodes are
    yielded but not descended into — useful when analyzing a single
    query block, the granularity at which the paper's checks operate.
    """
    yield node
    for child in children(node):
        if not into_subqueries and isinstance(child, Select) and child is not node:
            yield child
            continue
        yield from walk(child, into_subqueries)


def column_refs(node: Any, into_subqueries: bool = False) -> Tuple[ColumnRef, ...]:
    """All :class:`ColumnRef` nodes under ``node`` (this block only by default)."""
    return tuple(
        n for n in walk(node, into_subqueries) if isinstance(n, ColumnRef)
    )


def aggregate_calls(node: Any) -> Tuple[FuncCall, ...]:
    """All aggregate :class:`FuncCall` nodes in this query block."""
    return tuple(
        n
        for n in walk(node, into_subqueries=False)
        if isinstance(n, FuncCall) and n.is_aggregate
    )


def transform(node: Any, fn: Callable[[Any], Any]) -> Any:
    """Bottom-up rewrite: apply ``fn`` to every node, rebuilding parents.

    ``fn`` receives each (already-rebuilt) node and returns a
    replacement (or the node unchanged).  Tuples of nodes are rebuilt
    element-wise.
    """

    def rebuild(value: Any) -> Any:
        if _is_node(value):
            return transform(value, fn)
        if isinstance(value, tuple):
            return tuple(rebuild(item) for item in value)
        return value

    if not _is_node(node):
        return fn(node)
    kwargs = {}
    changed = False
    for name in _node_fields(node):
        old = getattr(node, name)
        new = rebuild(old)
        kwargs[name] = new
        if new is not old and new != old:
            changed = True
    rebuilt = type(node)(**kwargs) if changed else node
    return fn(rebuilt)


def conjuncts(expr: Optional[Expr]) -> Tuple[Expr, ...]:
    """Split a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return ()
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return (expr,)


def conjoin(parts: Tuple[Expr, ...] | list) -> Optional[Expr]:
    """Reassemble conjuncts into a single AND tree (None if empty)."""
    parts = tuple(parts)
    if not parts:
        return None
    result = parts[0]
    for part in parts[1:]:
        result = BinaryOp("AND", result, part)
    return result
