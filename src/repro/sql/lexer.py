"""A hand-written lexer for the SQL subset used by the paper.

Produces a flat list of :class:`Token`.  Keywords are case-insensitive
and normalized to upper case; identifiers are folded to lower case
(PostgreSQL behaviour).  Double-quoted identifiers preserve case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import LexerError

KEYWORDS = frozenset(
    """
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT OFFSET AS AND OR NOT
    IN BETWEEN LIKE IS NULL TRUE FALSE DISTINCT ALL JOIN INNER LEFT
    RIGHT FULL OUTER CROSS NATURAL ON USING WITH UNION EXCEPT INTERSECT
    CASE WHEN THEN ELSE END ASC DESC EXISTS CAST COUNT SUM AVG MIN MAX
    """.split()
)


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENTIFIER = "IDENTIFIER"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCTUATION = "PUNCTUATION"
    PARAMETER = "PARAMETER"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        return self.type is token_type and (value is None or self.value == value)

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r})"


_OPERATORS = ("<=", ">=", "<>", "!=", "||", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCTUATION = frozenset("(),.;")


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL ``text``; raises :class:`LexerError` on bad input."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            newline = text.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise LexerError("unterminated block comment", i)
            i = end + 2
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = text[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i + 1 < n and (
                    text[i + 1].isdigit() or text[i + 1] in "+-"
                ):
                    seen_exp = True
                    i += 2 if text[i + 1] in "+-" else 1
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, text[start:i], start))
            continue
        if ch == "'":
            start = i
            i += 1
            pieces: List[str] = []
            while True:
                if i >= n:
                    raise LexerError("unterminated string literal", start)
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":  # escaped quote
                        pieces.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                pieces.append(text[i])
                i += 1
            tokens.append(Token(TokenType.STRING, "".join(pieces), start))
            continue
        if ch == '"':
            start = i
            end = text.find('"', i + 1)
            if end < 0:
                raise LexerError("unterminated quoted identifier", start)
            tokens.append(Token(TokenType.IDENTIFIER, text[i + 1 : end], start))
            i = end + 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word.lower(), start))
            continue
        if ch == ":" and i + 1 < n and (text[i + 1].isalpha() or text[i + 1] == "_"):
            start = i
            i += 1
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            tokens.append(Token(TokenType.PARAMETER, text[start + 1 : i].lower(), start))
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, ch, i))
            i += 1
            continue
        raise LexerError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
