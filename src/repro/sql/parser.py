"""Recursive-descent parser for the supported SQL subset.

Grammar (roughly)::

    statement   := [WITH cte ("," cte)*] select [";"]
    cte         := name ["(" col ("," col)* ")"] AS "(" select ")"
    select      := SELECT [DISTINCT] items FROM from_item ("," from_item)*
                   [WHERE expr] [GROUP BY expr_list] [HAVING expr]
                   [ORDER BY order_list] [LIMIT n]
    from_item   := table_primary (join_clause)*
    join_clause := [INNER] JOIN table_primary ON expr
                 | NATURAL JOIN table_primary [ON col_list]
    expr        := or_expr (standard precedence: OR < AND < NOT <
                   comparison/IN/BETWEEN/IS < additive < multiplicative
                   < unary < primary)

The nonstandard ``NATURAL JOIN t ON (a, b)`` form from the paper's
Listing 8 (natural join on an explicit column list) is accepted and
treated as USING.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import Token, TokenType, tokenize


def parse(sql: str) -> ast.Query:
    """Parse one SQL statement into a :class:`repro.sql.ast.Query`."""
    return _Parser(tokenize(sql)).parse_statement()


def parse_expression(sql: str) -> ast.Expr:
    """Parse a standalone scalar/boolean expression (for tests, tools)."""
    parser = _Parser(tokenize(sql))
    expr = parser._expr()
    parser._expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token utilities ------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, token_type: TokenType, value: Optional[str] = None) -> bool:
        return self._peek().matches(token_type, value)

    def _accept(self, token_type: TokenType, value: Optional[str] = None) -> Optional[Token]:
        if self._check(token_type, value):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, value: Optional[str] = None) -> Token:
        token = self._peek()
        if not token.matches(token_type, value):
            wanted = value or token_type.name
            raise ParseError(
                f"expected {wanted}, found {token.value or 'end of input'!r} "
                f"at offset {token.position}"
            )
        return self._advance()

    def _expect_eof(self) -> None:
        self._accept(TokenType.PUNCTUATION, ";")
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input {token.value!r} at offset {token.position}"
            )

    def _keyword(self, word: str) -> bool:
        return self._accept(TokenType.KEYWORD, word) is not None

    # -- statements -----------------------------------------------------
    def parse_statement(self) -> ast.Query:
        ctes: List[ast.CommonTableExpr] = []
        if self._keyword("WITH"):
            ctes.append(self._cte())
            while self._accept(TokenType.PUNCTUATION, ","):
                ctes.append(self._cte())
        body = self._select()
        self._expect_eof()
        return ast.Query(body=body, ctes=tuple(ctes))

    def _cte(self) -> ast.CommonTableExpr:
        name = self._expect(TokenType.IDENTIFIER).value
        columns: List[str] = []
        if self._accept(TokenType.PUNCTUATION, "("):
            columns.append(self._expect(TokenType.IDENTIFIER).value)
            while self._accept(TokenType.PUNCTUATION, ","):
                columns.append(self._expect(TokenType.IDENTIFIER).value)
            self._expect(TokenType.PUNCTUATION, ")")
        self._expect(TokenType.KEYWORD, "AS")
        self._expect(TokenType.PUNCTUATION, "(")
        query = self._select()
        self._expect(TokenType.PUNCTUATION, ")")
        return ast.CommonTableExpr(name=name, query=query, columns=tuple(columns))

    def _select(self) -> ast.Select:
        self._expect(TokenType.KEYWORD, "SELECT")
        distinct = False
        if self._keyword("DISTINCT"):
            distinct = True
        elif self._keyword("ALL"):
            pass
        items = [self._select_item()]
        while self._accept(TokenType.PUNCTUATION, ","):
            items.append(self._select_item())

        from_items: List[ast.TableExpr] = []
        if self._keyword("FROM"):
            from_items.append(self._from_item())
            while self._accept(TokenType.PUNCTUATION, ","):
                from_items.append(self._from_item())

        where = self._expr() if self._keyword("WHERE") else None

        group_by: List[ast.Expr] = []
        if self._keyword("GROUP"):
            self._expect(TokenType.KEYWORD, "BY")
            group_by.append(self._expr())
            while self._accept(TokenType.PUNCTUATION, ","):
                group_by.append(self._expr())

        having = self._expr() if self._keyword("HAVING") else None

        order_by: List[ast.OrderItem] = []
        if self._keyword("ORDER"):
            self._expect(TokenType.KEYWORD, "BY")
            order_by.append(self._order_item())
            while self._accept(TokenType.PUNCTUATION, ","):
                order_by.append(self._order_item())

        limit: Optional[int] = None
        if self._keyword("LIMIT"):
            token = self._expect(TokenType.NUMBER)
            limit = int(token.value)

        return ast.Select(
            items=tuple(items),
            from_items=tuple(from_items),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _select_item(self) -> ast.SelectItem:
        if self._check(TokenType.OPERATOR, "*"):
            self._advance()
            return ast.SelectItem(ast.Star())
        expr = self._expr()
        alias = None
        if self._keyword("AS"):
            alias = self._expect(TokenType.IDENTIFIER).value
        elif self._check(TokenType.IDENTIFIER):
            alias = self._advance().value
        return ast.SelectItem(expr=expr, alias=alias)

    def _order_item(self) -> ast.OrderItem:
        expr = self._expr()
        ascending = True
        if self._keyword("DESC"):
            ascending = False
        else:
            self._keyword("ASC")
        return ast.OrderItem(expr=expr, ascending=ascending)

    # -- FROM items -----------------------------------------------------
    def _from_item(self) -> ast.TableExpr:
        left = self._table_primary()
        while True:
            natural = False
            if self._check(TokenType.KEYWORD, "NATURAL"):
                self._advance()
                natural = True
                self._expect(TokenType.KEYWORD, "JOIN")
            elif self._check(TokenType.KEYWORD, "INNER"):
                self._advance()
                self._expect(TokenType.KEYWORD, "JOIN")
            elif self._check(TokenType.KEYWORD, "CROSS"):
                self._advance()
                self._expect(TokenType.KEYWORD, "JOIN")
                right = self._table_primary()
                left = ast.JoinedTable(left=left, right=right)
                continue
            elif self._check(TokenType.KEYWORD, "JOIN"):
                self._advance()
            else:
                break
            right = self._table_primary()
            condition: Optional[ast.Expr] = None
            if natural:
                # Accept the paper's "NATURAL JOIN t ON col_list" form.
                if self._keyword("ON"):
                    condition = self._expr()
            else:
                self._expect(TokenType.KEYWORD, "ON")
                condition = self._expr()
            left = ast.JoinedTable(
                left=left, right=right, natural=natural, condition=condition
            )
        return left

    def _table_primary(self) -> ast.TableExpr:
        if self._accept(TokenType.PUNCTUATION, "("):
            query = self._select()
            self._expect(TokenType.PUNCTUATION, ")")
            alias = self._table_alias(required=True)
            assert alias is not None
            return ast.DerivedTable(query=query, alias=alias)
        name = self._expect(TokenType.IDENTIFIER).value
        alias = self._table_alias(required=False)
        return ast.NamedTable(name=name, alias=alias)

    def _table_alias(self, required: bool) -> Optional[str]:
        if self._keyword("AS"):
            return self._expect(TokenType.IDENTIFIER).value
        if self._check(TokenType.IDENTIFIER):
            return self._advance().value
        if required:
            raise ParseError(
                f"derived table requires an alias at offset {self._peek().position}"
            )
        return None

    # -- expressions ------------------------------------------------
    def _expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self._keyword("OR"):
            left = ast.BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self._keyword("AND"):
            left = ast.BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expr:
        if self._keyword("NOT"):
            return ast.UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        if self._check(TokenType.KEYWORD, "EXISTS"):
            self._advance()
            self._expect(TokenType.PUNCTUATION, "(")
            subquery = self._select()
            self._expect(TokenType.PUNCTUATION, ")")
            return ast.ExistsSubquery(subquery=subquery)
        left = self._additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in (
            "=", "<>", "!=", "<", "<=", ">", ">=",
        ):
            self._advance()
            op = "<>" if token.value == "!=" else token.value
            return ast.BinaryOp(op, left, self._additive())
        negated = False
        if self._check(TokenType.KEYWORD, "NOT"):
            lookahead = self._peek(1)
            if lookahead.type is TokenType.KEYWORD and lookahead.value in (
                "IN", "BETWEEN", "LIKE",
            ):
                self._advance()
                negated = True
        if self._keyword("IN"):
            return self._in_rest(left, negated)
        if self._keyword("BETWEEN"):
            low = self._additive()
            self._expect(TokenType.KEYWORD, "AND")
            high = self._additive()
            return ast.Between(needle=left, low=low, high=high, negated=negated)
        if self._keyword("IS"):
            is_not = self._keyword("NOT")
            self._expect(TokenType.KEYWORD, "NULL")
            return ast.IsNull(operand=left, negated=is_not)
        return left

    def _in_rest(self, needle: ast.Expr, negated: bool) -> ast.Expr:
        self._expect(TokenType.PUNCTUATION, "(")
        if self._check(TokenType.KEYWORD, "SELECT"):
            subquery = self._select()
            self._expect(TokenType.PUNCTUATION, ")")
            return ast.InSubquery(needle=needle, subquery=subquery, negated=negated)
        items = [self._expr()]
        while self._accept(TokenType.PUNCTUATION, ","):
            items.append(self._expr())
        self._expect(TokenType.PUNCTUATION, ")")
        return ast.InList(needle=needle, items=tuple(items), negated=negated)

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-", "||"):
                self._advance()
                left = ast.BinaryOp(token.value, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("*", "/", "%"):
                self._advance()
                left = ast.BinaryOp(token.value, left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expr:
        if self._check(TokenType.OPERATOR, "-"):
            self._advance()
            operand = self._unary()
            if isinstance(operand, ast.Literal) and isinstance(
                operand.value, (int, float)
            ):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if self._check(TokenType.OPERATOR, "+"):
            self._advance()
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.PARAMETER:
            self._advance()
            return ast.Parameter(token.value)
        if token.matches(TokenType.KEYWORD, "NULL"):
            self._advance()
            return ast.Literal(None)
        if token.matches(TokenType.KEYWORD, "TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.matches(TokenType.KEYWORD, "FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.matches(TokenType.KEYWORD, "CASE"):
            return self._case()
        if token.type is TokenType.KEYWORD and token.value in ast.AGGREGATE_FUNCTIONS:
            self._advance()
            if self._check(TokenType.PUNCTUATION, "("):
                return self._call(token.value)
            # Aggregate keywords double as column names when not called
            # (e.g. "ORDER BY count" referring to an output column).
            return ast.ColumnRef(table=None, column=token.value.lower())
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            if self._check(TokenType.PUNCTUATION, "("):
                return self._call(token.value.upper())
            if self._accept(TokenType.PUNCTUATION, "."):
                if self._check(TokenType.OPERATOR, "*"):
                    self._advance()
                    return ast.Star(table=token.value)
                column = self._expect(TokenType.IDENTIFIER).value
                return ast.ColumnRef(table=token.value, column=column)
            return ast.ColumnRef(table=None, column=token.value)
        if token.matches(TokenType.PUNCTUATION, "("):
            self._advance()
            first = self._expr()
            if self._accept(TokenType.PUNCTUATION, ","):
                items = [first, self._expr()]
                while self._accept(TokenType.PUNCTUATION, ","):
                    items.append(self._expr())
                self._expect(TokenType.PUNCTUATION, ")")
                return ast.TupleExpr(items=tuple(items))
            self._expect(TokenType.PUNCTUATION, ")")
            return first
        raise ParseError(
            f"unexpected token {token.value or 'end of input'!r} "
            f"at offset {token.position}"
        )

    def _call(self, name: str) -> ast.Expr:
        self._expect(TokenType.PUNCTUATION, "(")
        distinct = False
        args: List[ast.Expr] = []
        if self._check(TokenType.OPERATOR, "*"):
            self._advance()
            args.append(ast.Star())
        elif not self._check(TokenType.PUNCTUATION, ")"):
            if self._keyword("DISTINCT"):
                distinct = True
            args.append(self._expr())
            while self._accept(TokenType.PUNCTUATION, ","):
                args.append(self._expr())
        self._expect(TokenType.PUNCTUATION, ")")
        return ast.FuncCall(name=name.upper(), args=tuple(args), distinct=distinct)

    def _case(self) -> ast.Expr:
        self._expect(TokenType.KEYWORD, "CASE")
        whens: List[Tuple[ast.Expr, ast.Expr]] = []
        while self._keyword("WHEN"):
            condition = self._expr()
            self._expect(TokenType.KEYWORD, "THEN")
            whens.append((condition, self._expr()))
        if not whens:
            raise ParseError("CASE requires at least one WHEN branch")
        default = self._expr() if self._keyword("ELSE") else None
        self._expect(TokenType.KEYWORD, "END")
        return ast.CaseExpr(whens=tuple(whens), default=default)
