"""Render AST nodes back to SQL text.

The Smart-Iceberg optimizer is a source-to-source rewriter: it takes
SQL in and emits SQL (plus NLJP operator specs) out.  This module
produces deterministic, round-trippable text — ``parse(render(q))``
yields an AST equal to ``q`` (modulo redundant parentheses, which we
always emit around binary subexpressions to avoid precedence bugs).
"""

from __future__ import annotations

from typing import Any

from repro.sql import ast


def render(node: Any) -> str:
    """Render any query or expression AST node to SQL text."""
    if isinstance(node, ast.Query):
        return _render_query(node)
    if isinstance(node, ast.Select):
        return _render_select(node)
    return _render_expr(node)


def _render_query(query: ast.Query) -> str:
    parts = []
    if query.ctes:
        rendered = []
        for cte in query.ctes:
            columns = f"({', '.join(cte.columns)})" if cte.columns else ""
            rendered.append(f"{cte.name}{columns} AS ({_render_select(cte.query)})")
        parts.append("WITH " + ", ".join(rendered))
    parts.append(_render_select(query.body))
    return "\n".join(parts)


def _render_select(select: ast.Select) -> str:
    pieces = ["SELECT"]
    if select.distinct:
        pieces.append("DISTINCT")
    pieces.append(", ".join(_render_item(item) for item in select.items))
    if select.from_items:
        pieces.append("FROM")
        pieces.append(", ".join(_render_table(t) for t in select.from_items))
    if select.where is not None:
        pieces.append("WHERE")
        pieces.append(_render_expr(select.where))
    if select.group_by:
        pieces.append("GROUP BY")
        pieces.append(", ".join(_render_expr(e) for e in select.group_by))
    if select.having is not None:
        pieces.append("HAVING")
        pieces.append(_render_expr(select.having))
    if select.order_by:
        pieces.append("ORDER BY")
        pieces.append(
            ", ".join(
                _render_expr(item.expr) + ("" if item.ascending else " DESC")
                for item in select.order_by
            )
        )
    if select.limit is not None:
        pieces.append(f"LIMIT {select.limit}")
    return " ".join(pieces)


def _render_item(item: ast.SelectItem) -> str:
    text = _render_expr(item.expr)
    if item.alias:
        text += f" AS {item.alias}"
    return text


def _render_table(table: ast.TableExpr) -> str:
    if isinstance(table, ast.NamedTable):
        if table.alias:
            return f"{table.name} {table.alias}"
        return table.name
    if isinstance(table, ast.DerivedTable):
        return f"({_render_select(table.query)}) {table.alias}"
    if isinstance(table, ast.JoinedTable):
        left = _render_table(table.left)
        right = _render_table(table.right)
        if table.natural:
            text = f"{left} NATURAL JOIN {right}"
            if table.condition is not None:
                text += f" ON {_render_expr(table.condition)}"
            return text
        if table.condition is None:
            return f"{left} CROSS JOIN {right}"
        return f"{left} JOIN {right} ON {_render_expr(table.condition)}"
    raise TypeError(f"cannot render table expression {table!r}")


def _render_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)


def _render_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Literal):
        return _render_literal(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return expr.qualified()
    if isinstance(expr, ast.Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, ast.Parameter):
        return f":{expr.name}"
    if isinstance(expr, ast.BinaryOp):
        left = _render_expr(expr.left)
        right = _render_expr(expr.right)
        if isinstance(expr.left, ast.BinaryOp):
            left = f"({left})"
        if isinstance(expr.right, ast.BinaryOp):
            right = f"({right})"
        return f"{left} {expr.op} {right}"
    if isinstance(expr, ast.UnaryOp):
        operand = _render_expr(expr.operand)
        if isinstance(expr.operand, ast.BinaryOp):
            operand = f"({operand})"
        if expr.op == "NOT":
            return f"NOT {operand}"
        return f"{expr.op}{operand}"
    if isinstance(expr, ast.FuncCall):
        distinct = "DISTINCT " if expr.distinct else ""
        args = ", ".join(_render_expr(a) for a in expr.args)
        return f"{expr.name}({distinct}{args})"
    if isinstance(expr, ast.TupleExpr):
        return "(" + ", ".join(_render_expr(item) for item in expr.items) + ")"
    if isinstance(expr, ast.InList):
        keyword = "NOT IN" if expr.negated else "IN"
        items = ", ".join(_render_expr(item) for item in expr.items)
        return f"{_render_expr(expr.needle)} {keyword} ({items})"
    if isinstance(expr, ast.InSubquery):
        keyword = "NOT IN" if expr.negated else "IN"
        return f"{_render_expr(expr.needle)} {keyword} ({_render_select(expr.subquery)})"
    if isinstance(expr, ast.ExistsSubquery):
        keyword = "NOT EXISTS" if expr.negated else "EXISTS"
        return f"{keyword} ({_render_select(expr.subquery)})"
    if isinstance(expr, ast.Between):
        keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"{_render_expr(expr.needle)} {keyword} "
            f"{_render_expr(expr.low)} AND {_render_expr(expr.high)}"
        )
    if isinstance(expr, ast.IsNull):
        keyword = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{_render_expr(expr.operand)} {keyword}"
    if isinstance(expr, ast.CaseExpr):
        parts = ["CASE"]
        for condition, value in expr.whens:
            parts.append(f"WHEN {_render_expr(condition)} THEN {_render_expr(value)}")
        if expr.default is not None:
            parts.append(f"ELSE {_render_expr(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    raise TypeError(f"cannot render expression {expr!r}")
