"""In-memory relational storage substrate.

This package plays the role PostgreSQL played in the paper's
implementation: typed tables, hash and sorted secondary indexes, and a
catalog that records keys and functional dependencies for the
optimizer's safety checks.
"""

from repro.storage.catalog import Database
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.schema import Column, TableSchema
from repro.storage.statistics import (
    ColumnStats,
    Histogram,
    KMVSketch,
    TableStats,
    analyze,
)
from repro.storage.table import Table
from repro.storage.types import NULL, SqlType, infer_type

__all__ = [
    "Column",
    "ColumnStats",
    "Database",
    "HashIndex",
    "Histogram",
    "KMVSketch",
    "NULL",
    "SortedIndex",
    "SqlType",
    "Table",
    "TableSchema",
    "TableStats",
    "analyze",
    "infer_type",
]
