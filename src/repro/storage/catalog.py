"""The database catalog: named tables plus declared constraints.

The catalog is the engine's single entry point.  Besides holding
tables, it records each table's primary key and any additional
functional dependencies — the metadata Theorems 2 and 3 of the paper
consume when deciding whether a-priori or pruning is safe.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import CatalogError
from repro.constraints.fd import FDSet, FunctionalDependency
from repro.storage.schema import Column, TableSchema
from repro.storage.statistics import (
    HISTOGRAM_BUCKETS,
    FeedbackStatistics,
    TableStats,
)
from repro.storage.table import Table


class Database:
    """A named collection of tables with constraint metadata."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._fds: Dict[str, FDSet] = {}
        self._primary_keys: Dict[str, Tuple[str, ...]] = {}
        self._domains: Dict[Tuple[str, str], Tuple[Optional[float], Optional[float]]] = {}
        # Advanced by every DDL change (create/drop table, constraint
        # or domain declarations).  Together with the per-table data
        # and statistics versions this forms ``version_token()``, the
        # invalidation key of the serving layer's shared plan cache.
        self._catalog_version = 0
        # Execution-feedback store (estimate→actual observations);
        # FeedbackStatistics is internally locked, and the reference
        # itself is immutable after construction.
        self._feedback = FeedbackStatistics()  # unguarded: write-once in __init__, internally synchronized

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        schema: TableSchema | Sequence[Column],
        primary_key: Optional[Sequence[str]] = None,
    ) -> Table:
        """Create a table; an optional primary key adds an FD and index."""
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        if not isinstance(schema, TableSchema):
            schema = TableSchema(schema)
        table = Table(key, schema)
        self._tables[key] = table
        self._fds[key] = FDSet()
        self._catalog_version += 1
        if primary_key:
            self.declare_key(key, primary_key)
            table.create_index(f"{key}_pkey", list(primary_key), kind="hash")
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"no table named {name!r}")
        del self._tables[key]
        del self._fds[key]
        self._primary_keys.pop(key, None)
        self._catalog_version += 1

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    @property
    def table_names(self) -> List[str]:
        return sorted(self._tables)

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    def declare_key(self, table_name: str, key_columns: Sequence[str]) -> None:
        """Declare ``key_columns`` as a key of the table.

        Records the FD ``key → all columns``.  The first declared key is
        remembered as the primary key.
        """
        table = self.table(table_name)
        columns = tuple(column.lower() for column in key_columns)
        for column in columns:
            table.schema.index_of(column)  # validates existence
        self._fds[table.name].add_key(columns, table.schema.column_names)
        self._primary_keys.setdefault(table.name, columns)
        self._catalog_version += 1

    def declare_fd(
        self, table_name: str, lhs: Iterable[str], rhs: Iterable[str]
    ) -> None:
        """Declare an arbitrary functional dependency on a table."""
        table = self.table(table_name)
        dependency = FunctionalDependency.of(lhs, rhs)
        for column in dependency.lhs | dependency.rhs:
            table.schema.index_of(column)
        self._fds[table.name].add(dependency)
        self._catalog_version += 1

    def fds(self, table_name: str) -> FDSet:
        """The declared FD set of a table (empty set if none declared)."""
        return self._fds[self.table(table_name).name]

    def primary_key(self, table_name: str) -> Optional[Tuple[str, ...]]:
        return self._primary_keys.get(self.table(table_name).name)

    def is_superkey(self, table_name: str, columns: Iterable[str]) -> bool:
        """Is ``columns`` a superkey of the table per declared FDs?"""
        table = self.table(table_name)
        return self.fds(table_name).is_superkey(columns, table.schema.column_names)

    # ------------------------------------------------------------------
    # Statistics (ANALYZE)
    # ------------------------------------------------------------------
    def analyze(self, buckets: int = HISTOGRAM_BUCKETS) -> Dict[str, TableStats]:
        """Collect statistics for every table (the ANALYZE command).

        The cost-based join-order enumerator and the Smart-Iceberg
        technique selection consume these; without ANALYZE they fall
        back to row counts and index distinct-key counts alone.
        Statistics stay incrementally fresh under subsequent inserts.
        """
        return {
            name: self.table(name).analyze(buckets=buckets)
            for name in self.table_names
        }

    def statistics(self, table_name: str) -> Optional[TableStats]:
        """Collected statistics for one table (None before analyze)."""
        return self.table(table_name).statistics

    @property
    def feedback(self) -> FeedbackStatistics:
        """The database's execution-feedback store.

        Harvested observations (predicate fingerprint → est/actual
        rows) land here; ``EngineConfig.feedback="apply"`` consults it
        during cardinality estimation.  Entries self-invalidate when
        the data/stats portion of :meth:`version_token` moves.
        """
        return self._feedback

    def feedback_token(self) -> Tuple[int, int]:
        """The ``(data, stats)`` version pair feedback records live under."""
        return (self.data_version, self.stats_version)

    # ------------------------------------------------------------------
    # Versioning (plan-cache invalidation)
    # ------------------------------------------------------------------
    @property
    def catalog_version(self) -> int:
        """Monotonic counter advanced by every DDL change."""
        return self._catalog_version

    @property
    def data_version(self) -> int:
        """Sum of per-table mutation counters (inserts/truncates)."""
        return sum(table.data_version for table in self._tables.values())

    @property
    def stats_version(self) -> int:
        """Sum of per-table statistics epochs (ANALYZE/invalidate)."""
        return sum(table.stats_version for table in self._tables.values())

    def version_token(self) -> Tuple[int, int, int]:
        """``(catalog, data, stats)`` versions as one comparable token.

        Any DDL, insert, truncate, or ANALYZE changes the token, so a
        plan cached under one token is provably planned against the
        current schema, data, and statistics while the token matches.
        The per-table counters only ever advance; a dropped table's
        contribution is covered by the catalog-version bump of the
        DROP itself.
        """
        return (self.catalog_version, self.data_version, self.stats_version)

    # ------------------------------------------------------------------
    # Value domains (CHECK-style bounds)
    # ------------------------------------------------------------------
    def declare_domain(
        self,
        table_name: str,
        column: str,
        lower: Optional[float] = None,
        upper: Optional[float] = None,
    ) -> None:
        """Declare value bounds for a column (like a CHECK constraint).

        The monotonicity analysis (Table 2) needs to know that a SUM
        argument is nonnegative before classifying ``SUM(A) >= c`` as
        monotone; declaring ``lower=0`` provides exactly that fact.
        """
        table = self.table(table_name)
        table.schema.index_of(column)
        self._domains[(table.name, column.lower())] = (lower, upper)
        self._catalog_version += 1

    def domain(
        self, table_name: str, column: str
    ) -> Tuple[Optional[float], Optional[float]]:
        """Declared (lower, upper) bounds; (None, None) if undeclared."""
        table = self.table(table_name)
        return self._domains.get((table.name, column.lower()), (None, None))

    def is_nonnegative(self, table_name: str, column: str) -> bool:
        lower, _ = self.domain(table_name, column)
        return lower is not None and lower >= 0
