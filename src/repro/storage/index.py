"""Secondary indexes over in-memory tables.

Two index kinds mirror what the paper's PostgreSQL setup used:

* :class:`HashIndex` — equality lookups (plays the role of a hash/PK
  index; used for equality join attributes and the NLJP cache's primary
  key, the "CI" configuration in Figure 4).
* :class:`SortedIndex` — range lookups over one or more columns (plays
  the role of the secondary B-tree "BT" index in Figure 4).  Backed by a
  sorted list with ``bisect``; supports >=, >, <=, < probes on a prefix
  of the key.

Indexes store *row ids* (positions in the owning table), so they stay
valid as long as the table is append-only, which is all the engine
needs; deletes rebuild indexes.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

Key = Tuple[Any, ...]


class HashIndex:
    """Equality index mapping key tuples to lists of row ids.

    Rows whose key contains a NULL are not indexed: SQL equality can
    never match a NULL, so such rows can never satisfy an equality
    probe.
    """

    def __init__(self, name: str, column_positions: Sequence[int]) -> None:
        self.name = name
        self.column_positions = tuple(column_positions)
        self._buckets: Dict[Key, List[int]] = {}

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    @property
    def distinct_keys(self) -> int:
        return len(self._buckets)

    def key_of(self, row: Sequence[Any]) -> Key:
        return tuple(row[position] for position in self.column_positions)

    def insert(self, row_id: int, row: Sequence[Any]) -> None:
        key = self.key_of(row)
        if any(value is None for value in key):
            return
        self._buckets.setdefault(key, []).append(row_id)

    def lookup(self, key: Key) -> Sequence[int]:
        """Row ids whose key equals ``key``; empty for NULL-containing keys."""
        if any(value is None for value in key):
            return ()
        return tuple(self._buckets.get(key, ()))

    def clear(self) -> None:
        self._buckets.clear()


class SortedIndex:
    """Ordered index over one or more columns, supporting range probes.

    The index keeps ``(key, row_id)`` pairs sorted by key.  ``range_scan``
    returns row ids whose *first* key column lies in ``[low, high]``
    (either bound optional, either bound strict); multi-column keys are
    supported for ordering but range probes bound only the leading
    column, matching how a B-tree on ``(h, hr)`` is used by the queries
    in the paper.
    """

    def __init__(self, name: str, column_positions: Sequence[int]) -> None:
        self.name = name
        self.column_positions = tuple(column_positions)
        self._keys: List[Key] = []
        self._row_ids: List[int] = []
        self._pending: List[Tuple[Key, int]] = []
        self._row_id_array: Any = None

    def __len__(self) -> int:
        self._flush()
        return len(self._row_ids)

    def key_of(self, row: Sequence[Any]) -> Key:
        return tuple(row[position] for position in self.column_positions)

    def insert(self, row_id: int, row: Sequence[Any]) -> None:
        key = self.key_of(row)
        if any(value is None for value in key):
            return
        self._pending.append((key, row_id))

    def _flush(self) -> None:
        """Fold buffered inserts into the sorted arrays.

        Buffering makes bulk loads O(n log n) overall instead of
        O(n^2) from repeated mid-list insertion.
        """
        if not self._pending:
            return
        merged = sorted(
            list(zip(self._keys, self._row_ids)) + self._pending
        )
        self._keys = [key for key, _ in merged]
        self._row_ids = [row_id for _, row_id in merged]
        self._pending.clear()
        self._row_id_array = None

    def range_bounds(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        low_strict: bool = False,
        high_strict: bool = False,
    ) -> Tuple[int, int]:
        """The ``[start, stop)`` index-order positions matching the bounds.

        The positions returned enumerate exactly the row ids
        :meth:`range_scan` would yield, in the same order — columnar
        range joins slice the index-ordered store with them instead of
        iterating row by row.
        """
        self._flush()
        if low is None:
            start = 0
        elif low_strict:
            start = bisect.bisect_right(self._keys, (low,), key=lambda k: k[:1])
        else:
            start = bisect.bisect_left(self._keys, (low,), key=lambda k: k[:1])
        if high is None:
            stop = len(self._keys)
        elif high_strict:
            stop = bisect.bisect_left(self._keys, (high,), key=lambda k: k[:1])
        else:
            stop = bisect.bisect_right(self._keys, (high,), key=lambda k: k[:1])
        return start, max(start, stop)

    def row_id_at(self, position: int) -> int:
        """The row id at one index-order position (after a flush)."""
        self._flush()
        return self._row_ids[position]

    def sorted_entries(self) -> Tuple[List[Key], List[int]]:
        """The parallel ``(keys, row_ids)`` arrays in key order.

        Callers must treat both lists as read-only; they are the index's
        live backing arrays (valid until the next insert), exposed so
        trie views (:mod:`repro.engine.wcoj`) can be built by slicing
        the already-sorted data instead of re-sorting the table.
        """
        self._flush()
        return self._keys, self._row_ids

    def row_id_array(self) -> Any:
        """Row ids in index order, as an ``int64`` ndarray when NumPy is
        available (else a plain list).  Cached until the next flush."""
        self._flush()
        if self._row_id_array is None:
            try:
                import numpy
            except ImportError:
                self._row_id_array = list(self._row_ids)
            else:
                self._row_id_array = numpy.asarray(self._row_ids, dtype=numpy.int64)
        return self._row_id_array

    def range_scan(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        low_strict: bool = False,
        high_strict: bool = False,
    ) -> Iterator[int]:
        """Yield row ids whose leading key column is within the bounds."""
        self._flush()
        if low is None:
            start = 0
        elif low_strict:
            start = bisect.bisect_right(self._keys, (low,), key=lambda k: k[:1])
        else:
            start = bisect.bisect_left(self._keys, (low,), key=lambda k: k[:1])
        if high is None:
            stop = len(self._keys)
        elif high_strict:
            stop = bisect.bisect_left(self._keys, (high,), key=lambda k: k[:1])
        else:
            stop = bisect.bisect_right(self._keys, (high,), key=lambda k: k[:1])
        for position in range(start, stop):
            yield self._row_ids[position]

    def lookup(self, key: Key) -> Sequence[int]:
        """Row ids whose full key equals ``key`` (equality probe)."""
        self._flush()
        if any(value is None for value in key):
            return ()
        start = bisect.bisect_left(self._keys, key)
        result = []
        for position in range(start, len(self._keys)):
            if self._keys[position] != key:
                break
            result.append(self._row_ids[position])
        return tuple(result)

    def clear(self) -> None:
        self._keys.clear()
        self._row_ids.clear()
        self._pending.clear()
        self._row_id_array = None


def build_index(
    kind: str, name: str, column_positions: Sequence[int], rows: Iterable[Sequence[Any]]
) -> "HashIndex | SortedIndex":
    """Construct and bulk-load an index of the requested ``kind``."""
    if kind == "hash":
        index: HashIndex | SortedIndex = HashIndex(name, column_positions)
    elif kind == "sorted":
        index = SortedIndex(name, column_positions)
    else:
        raise ValueError(f"unknown index kind {kind!r}")
    for row_id, row in enumerate(rows):
        index.insert(row_id, row)
    return index
