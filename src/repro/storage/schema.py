"""Table schemas: ordered, typed columns with name lookup."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import SchemaError
from repro.storage.types import SqlType


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    ``nullable`` is advisory: the table enforces it on insert.
    """

    name: str
    type: SqlType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name {self.name!r}")


class TableSchema:
    """An ordered collection of :class:`Column` with O(1) name lookup.

    Column names are case-insensitive (stored lowercased), matching the
    SQL front end's identifier folding.
    """

    def __init__(self, columns: Iterable[Column]) -> None:
        self._columns: List[Column] = []
        self._index: Dict[str, int] = {}
        for column in columns:
            normalized = Column(column.name.lower(), column.type, column.nullable)
            if normalized.name in self._index:
                raise SchemaError(f"duplicate column {normalized.name!r}")
            self._index[normalized.name] = len(self._columns)
            self._columns.append(normalized)
        if not self._columns:
            raise SchemaError("a table schema needs at least one column")

    @classmethod
    def of(cls, *specs: Tuple[str, SqlType]) -> "TableSchema":
        """Shorthand constructor: ``TableSchema.of(("id", INTEGER), ...)``."""
        return cls(Column(name, sql_type) for name, sql_type in specs)

    @property
    def columns(self) -> Sequence[Column]:
        return tuple(self._columns)

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableSchema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(tuple(self._columns))

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.type.value}" for c in self._columns)
        return f"TableSchema({cols})"

    def index_of(self, name: str) -> int:
        """Return the position of column ``name`` (case-insensitive)."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SchemaError(f"no column named {name!r}") from None

    def column(self, name: str) -> Column:
        return self._columns[self.index_of(name)]

    def validate_row(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        """Validate and normalize one row against this schema."""
        if len(row) != len(self._columns):
            raise SchemaError(
                f"row has {len(row)} values, schema has {len(self._columns)} columns"
            )
        values = []
        for column, value in zip(self._columns, row):
            normalized = column.type.validate(value)
            if normalized is None and not column.nullable:
                raise SchemaError(f"column {column.name!r} is NOT NULL")
            values.append(normalized)
        return tuple(values)

    def project(self, names: Sequence[str]) -> "TableSchema":
        """Schema restricted to ``names``, in the given order."""
        return TableSchema(self.column(name) for name in names)
