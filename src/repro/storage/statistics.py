"""Table/column statistics: the ANALYZE subsystem.

The paper's Appendix D optimization procedure presumes the system can
*compare the cost* of technique/plan combinations.  This module supplies
the raw material: per-table row counts and per-column statistics —
distinct counts (exact below a threshold, a KMV sketch above it),
min/max, null fraction, and an equi-width histogram — collected by
:func:`analyze` and kept incrementally fresh on insert.

The estimators built on top live in :mod:`repro.engine.cardinality`
(selectivity) and :mod:`repro.engine.cost` (calibrated unit costs).

Everything here is deterministic: the sketch hashes values with BLAKE2b
rather than Python's per-process-salted ``hash``, so two runs over the
same data produce identical estimates.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Above this many *distinct* values a column's exact value set is
#: converted into a KMV sketch (bounded memory, bounded relative error).
EXACT_DISTINCT_THRESHOLD = 4096

#: Number of minimum hashes retained by the KMV sketch.
KMV_SIZE = 256

#: Default bucket count for equi-width histograms.
HISTOGRAM_BUCKETS = 32

_HASH_SPACE = float(2**64)


def stable_hash64(value: Any) -> int:
    """A 64-bit hash that is stable across processes and runs.

    Python's builtin ``hash`` is salted per process for strings, which
    would make distinct-count estimates non-reproducible; BLAKE2b of the
    value's typed repr is not.
    """
    data = f"{type(value).__name__}:{value!r}".encode("utf-8")
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


class KMVSketch:
    """K-minimum-values distinct-count estimator.

    Keeps the ``k`` smallest 64-bit hashes seen.  With ``m`` distinct
    values hashed uniformly into [0, 2^64), the ``k``-th smallest hash
    sits near ``k/m`` of the space, so ``m ≈ (k-1) * 2^64 / h_k``.
    Expected relative error is about ``1/sqrt(k-2)`` (~6% at k=256).
    """

    __slots__ = ("k", "_hashes", "_members")

    def __init__(self, k: int = KMV_SIZE) -> None:
        self.k = k
        self._hashes: List[int] = []  # sorted ascending, at most k
        self._members: set = set()

    def add(self, value: Any) -> None:
        self.add_hash(stable_hash64(value))

    def add_hash(self, h: int) -> None:
        if h in self._members:
            return
        hashes = self._hashes
        if len(hashes) >= self.k:
            if h >= hashes[-1]:
                return
            self._members.discard(hashes[-1])
            hashes.pop()
        import bisect

        bisect.insort(hashes, h)
        self._members.add(h)

    def estimate(self) -> float:
        hashes = self._hashes
        if len(hashes) < self.k:
            return float(len(hashes))
        return (self.k - 1) * _HASH_SPACE / float(hashes[-1])

    def __len__(self) -> int:
        return len(self._hashes)


class DistinctCounter:
    """Hybrid distinct counter: exact set, spilling to a KMV sketch.

    Exact for small tables (below :data:`EXACT_DISTINCT_THRESHOLD`
    distinct values), sketched above — the shape the tentpole asks for.
    """

    __slots__ = ("threshold", "_exact", "_sketch")

    def __init__(self, threshold: int = EXACT_DISTINCT_THRESHOLD) -> None:
        self.threshold = threshold
        self._exact: Optional[set] = set()
        self._sketch: Optional[KMVSketch] = None

    @property
    def is_exact(self) -> bool:
        return self._exact is not None

    def add(self, value: Any) -> None:
        if self._exact is not None:
            self._exact.add(value)
            if len(self._exact) > self.threshold:
                self._spill()
        else:
            assert self._sketch is not None
            self._sketch.add(value)

    def _spill(self) -> None:
        sketch = KMVSketch()
        assert self._exact is not None
        for value in self._exact:
            sketch.add(value)
        self._exact = None
        self._sketch = sketch

    def estimate(self) -> float:
        if self._exact is not None:
            return float(len(self._exact))
        assert self._sketch is not None
        return self._sketch.estimate()


@dataclass
class Histogram:
    """Equi-width histogram over a numeric column.

    ``counts[i]`` holds values in ``[low + i*width, low + (i+1)*width)``
    (last bucket closed).  Values inserted later that fall outside the
    original range are clamped into the end buckets, so incremental
    maintenance degrades gracefully instead of going stale.
    """

    low: float
    high: float
    counts: List[int]

    @property
    def total(self) -> int:
        return sum(self.counts)

    @property
    def width(self) -> float:
        return (self.high - self.low) / len(self.counts)

    @classmethod
    def build(cls, values: Sequence[float], buckets: int = HISTOGRAM_BUCKETS) -> Optional["Histogram"]:
        if not values:
            return None
        low = float(min(values))
        high = float(max(values))
        if low == high:
            return cls(low=low, high=high, counts=[len(values)])
        histogram = cls(low=low, high=high, counts=[0] * buckets)
        for value in values:
            histogram.add(float(value))
        return histogram

    def _bucket_of(self, value: float) -> int:
        if self.high == self.low:
            return 0
        position = int((value - self.low) / (self.high - self.low) * len(self.counts))
        return min(max(position, 0), len(self.counts) - 1)

    def add(self, value: float) -> None:
        self.counts[self._bucket_of(value)] += 1

    def fraction_below(self, value: float, inclusive: bool) -> float:
        """Estimated fraction of values ``< value`` (``<=`` if inclusive).

        Linear interpolation inside the containing bucket; the standard
        equi-width estimator.
        """
        total = self.total
        if total == 0:
            return 0.0
        if value < self.low:
            return 0.0
        if value > self.high or (value == self.high and inclusive):
            return 1.0
        if self.high == self.low:
            # Single-point histogram: all mass at one value.
            return 1.0 if (inclusive and value >= self.low) else 0.0
        position = self._bucket_of(value)
        below = sum(self.counts[:position])
        bucket_low = self.low + position * self.width
        within = (value - bucket_low) / self.width
        below += self.counts[position] * min(max(within, 0.0), 1.0)
        return min(max(below / total, 0.0), 1.0)

    def fraction_between(
        self,
        low: Optional[float],
        high: Optional[float],
        low_strict: bool = False,
        high_strict: bool = False,
    ) -> float:
        upper = 1.0 if high is None else self.fraction_below(high, inclusive=not high_strict)
        lower = 0.0 if low is None else self.fraction_below(low, inclusive=low_strict)
        return min(max(upper - lower, 0.0), 1.0)


@dataclass
class ColumnStats:
    """Statistics for one column of one table."""

    name: str
    non_null: int = 0
    nulls: int = 0
    minimum: Optional[Any] = None
    maximum: Optional[Any] = None
    distinct: DistinctCounter = field(default_factory=DistinctCounter)
    histogram: Optional[Histogram] = None

    @property
    def row_count(self) -> int:
        return self.non_null + self.nulls

    @property
    def null_fraction(self) -> float:
        total = self.row_count
        return self.nulls / total if total else 0.0

    @property
    def distinct_count(self) -> float:
        return self.distinct.estimate()

    def note(self, value: Any) -> None:
        """Incremental update for one inserted value."""
        if value is None:
            self.nulls += 1
            return
        self.non_null += 1
        self.distinct.add(value)
        try:
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
        except TypeError:
            pass  # mixed un-orderable types: keep whatever we have
        if self.histogram is not None and isinstance(value, (int, float)) and not isinstance(value, bool):
            self.histogram.add(float(value))


@dataclass
class TableStats:
    """Statistics for one table: row count plus per-column stats."""

    table_name: str
    row_count: int = 0
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name.lower())

    def note_insert(self, row: Sequence[Any], column_names: Sequence[str]) -> None:
        """Keep the statistics fresh for one appended row."""
        self.row_count += 1
        for name, value in zip(column_names, row):
            stats = self.columns.get(name)
            if stats is not None:
                stats.note(value)

    def summary(self) -> str:
        lines = [f"{self.table_name}: {self.row_count} rows"]
        for name in sorted(self.columns):
            c = self.columns[name]
            lines.append(
                f"  {name}: ndv~{c.distinct_count:.0f} "
                f"null={c.null_fraction:.3f} min={c.minimum!r} max={c.maximum!r}"
                + (" hist" if c.histogram is not None else "")
            )
        return "\n".join(lines)


def analyze_table(table, buckets: int = HISTOGRAM_BUCKETS) -> TableStats:
    """Collect full statistics for one table (the ANALYZE primitive).

    ``table`` is a :class:`repro.storage.table.Table`; typed loosely to
    avoid an import cycle (table.py attaches the result to itself).
    """
    names = table.schema.column_names
    stats = TableStats(table_name=table.name, row_count=len(table))
    per_column: List[ColumnStats] = [ColumnStats(name=name) for name in names]
    numeric_values: List[List[float]] = [[] for _ in names]
    for row in table.rows:
        for position, value in enumerate(row):
            column = per_column[position]
            if value is None:
                column.nulls += 1
                continue
            column.non_null += 1
            column.distinct.add(value)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                numeric_values[position].append(float(value))
    for position, column in enumerate(per_column):
        values = numeric_values[position]
        if values:
            column.minimum = min(values)
            column.maximum = max(values)
            column.histogram = Histogram.build(values, buckets=buckets)
        else:
            # Non-numeric: min/max by value order when orderable.
            observed = [
                row[position] for row in table.rows if row[position] is not None
            ]
            if observed:
                try:
                    column.minimum = min(observed)
                    column.maximum = max(observed)
                except TypeError:
                    pass
        stats.columns[column.name] = column
    return stats


# ---------------------------------------------------------------------------
# Execution feedback: observed cardinalities keyed by predicate fingerprint
# ---------------------------------------------------------------------------


@dataclass
class FeedbackRecord:
    """One predicate's observed cardinality, with staleness metadata.

    ``est_rows`` is the estimate the planner used on the *most recent*
    run that produced this record; ``actual_rows`` the rows the
    operator actually emitted.  ``max_q_error`` remembers the worst
    misestimate ever recorded for the fingerprint — the blending
    weight in :mod:`repro.engine.cardinality` grows with it, so a
    predicate the histogram path got badly wrong keeps trusting the
    observation even after the correction shrinks the *current*
    q-error to ~1.
    """

    fingerprint: str
    est_rows: float
    actual_rows: float
    q_error: float
    max_q_error: float
    observations: int
    token: Tuple[int, int]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "est_rows": round(self.est_rows, 3),
            "actual_rows": round(self.actual_rows, 3),
            "q_error": round(self.q_error, 3),
            "max_q_error": round(self.max_q_error, 3),
            "observations": self.observations,
            "token": list(self.token),
        }


class FeedbackStatistics:
    """Observed (fingerprint, est, actual) records for one database.

    The estimate→actual feedback store.  Records are keyed by
    predicate fingerprint and stamped with the database's
    ``(data_version, stats_version)`` pair at harvest time; a lookup
    under any *other* token discards the entry, so an insert, a
    truncate, or an ANALYZE invalidates every observation exactly like
    it invalidates a cached plan.

    ``version`` advances on every accepted record.  The serving layer
    appends it to the plan-cache token under ``feedback="apply"``, so
    fresh observations re-plan cached statements.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._lock = threading.RLock()
        self._records: Dict[str, FeedbackRecord] = {}  # guarded-by: self._lock
        self._version = 0  # guarded-by: self._lock

    @property
    def version(self) -> int:
        with self._lock:
            return self._version

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def record(
        self,
        fingerprint: str,
        est_rows: float,
        actual_rows: float,
        token: Tuple[int, int],
    ) -> FeedbackRecord:
        """Fold one observation into the store (EMA over actuals)."""
        est = max(float(est_rows), 1.0)
        actual = max(float(actual_rows), 0.0)
        q_error = max(est / max(actual, 1.0), max(actual, 1.0) / est)
        with self._lock:
            previous = self._records.get(fingerprint)
            if previous is not None and previous.token == tuple(token):
                actual = 0.5 * previous.actual_rows + 0.5 * actual
                entry = FeedbackRecord(
                    fingerprint=fingerprint,
                    est_rows=est,
                    actual_rows=actual,
                    q_error=q_error,
                    max_q_error=max(previous.max_q_error, q_error),
                    observations=previous.observations + 1,
                    token=tuple(token),
                )
            else:
                entry = FeedbackRecord(
                    fingerprint=fingerprint,
                    est_rows=est,
                    actual_rows=actual,
                    q_error=q_error,
                    max_q_error=q_error,
                    observations=1,
                    token=tuple(token),
                )
            if (
                previous is None
                and len(self._records) >= self.max_entries
            ):
                # Bounded store: evict the stalest-looking entry (fewest
                # observations, then smallest misestimate — the least
                # valuable correction to keep).
                victim = min(
                    self._records.values(),
                    key=lambda r: (r.observations, r.max_q_error),
                )
                del self._records[victim.fingerprint]
            self._records[fingerprint] = entry
            self._version += 1
            return entry

    def lookup(
        self, fingerprint: str, token: Tuple[int, int]
    ) -> Optional[FeedbackRecord]:
        """The live record for a fingerprint, dropping stale entries."""
        with self._lock:
            entry = self._records.get(fingerprint)
            if entry is None:
                return None
            if entry.token != tuple(token):
                del self._records[fingerprint]
                return None
            return entry

    def records(self) -> List[FeedbackRecord]:
        with self._lock:
            return list(self._records.values())

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._version += 1

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._records),
                "version": self._version,
                "records": [
                    record.to_dict()
                    for record in sorted(
                        self._records.values(),
                        key=lambda r: r.max_q_error,
                        reverse=True,
                    )
                ],
            }


# ---------------------------------------------------------------------------
# Online sketch statistics: cheap stats without a full ANALYZE
# ---------------------------------------------------------------------------

#: Upper bound on the rows sampled per column by :func:`sketch_table`'s
#: KMV distinct estimator (strided, deterministic).
SKETCH_SAMPLE_LIMIT = 2048

#: Chunk size for the zone-map pass that supplies min/max/null counts.
SKETCH_CHUNK = 1024


class _PresetDistinct:
    """Duck-typed :class:`DistinctCounter` holding a fixed estimate."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = float(value)

    @property
    def is_exact(self) -> bool:
        return False

    def add(self, value: Any) -> None:  # sketches are not maintained
        pass

    def estimate(self) -> float:
        return self.value


def _sampled_distinct(values: List[Any], total_non_null: int) -> float:
    """Distinct estimate from a strided sample.

    Two regimes cover the common shapes: a sample that is mostly
    distinct means a key-like column (scale the sample ratio up to the
    table), while a saturated sample means a low-cardinality domain
    (the sample already saw essentially every value).
    """
    sampled = len(values)
    if sampled == 0:
        return 0.0
    sketch = KMVSketch()
    for value in values:
        sketch.add(value)
    d_sample = sketch.estimate()
    if sampled >= total_non_null:
        return d_sample
    if d_sample >= 0.5 * sampled:
        return min(d_sample * total_non_null / sampled, float(total_non_null))
    return d_sample


def sketch_table(
    table,
    chunk_size: int = SKETCH_CHUNK,
    sample_limit: int = SKETCH_SAMPLE_LIMIT,
) -> TableStats:
    """Cheap online statistics for a never-ANALYZEd table.

    Piggybacks on the columnar scan machinery: per-chunk zone maps
    (cached on the table's :class:`~repro.engine.layout.ColumnStore`)
    supply exact min/max and null counts, a coarse equi-width histogram
    is assembled from the chunk bounds, and a deterministic strided
    sample feeds a KMV distinct sketch.  Orders of magnitude cheaper
    than :func:`analyze_table` on wide tables, and good enough to
    replace the ``sqrt(rows)`` NDV guess the estimator otherwise uses.
    """
    names = table.schema.column_names
    n = len(table)
    stats = TableStats(table_name=table.name, row_count=n)
    if n == 0:
        for name in names:
            stats.columns[name] = ColumnStats(name=name)
        return stats
    zones = table.column_store().zone_maps(chunk_size)
    stride = max(1, n // sample_limit)
    sampled_rows = table.rows[::stride]
    for position, name in enumerate(names):
        column = ColumnStats(name=name)
        chunk_bounds: List[Tuple[float, float, int]] = []
        for chunk in zones:
            zone = chunk.get(position)
            if zone is None:
                continue
            column.non_null += zone.non_null
            column.nulls += zone.nulls
            if zone.minimum is None or zone.maximum is None:
                continue
            try:
                if column.minimum is None or zone.minimum < column.minimum:
                    column.minimum = zone.minimum
                if column.maximum is None or zone.maximum > column.maximum:
                    column.maximum = zone.maximum
            except TypeError:
                continue
            if isinstance(zone.minimum, (int, float)) and not isinstance(
                zone.minimum, bool
            ):
                chunk_bounds.append(
                    (float(zone.minimum), float(zone.maximum), zone.non_null)
                )
        values = [row[position] for row in sampled_rows if row[position] is not None]
        column.distinct = _PresetDistinct(  # type: ignore[assignment]
            _sampled_distinct(values, column.non_null)
        )
        column.histogram = _chunk_histogram(chunk_bounds)
        stats.columns[name] = column
    return stats


def _chunk_histogram(
    chunk_bounds: List[Tuple[float, float, int]],
    buckets: int = HISTOGRAM_BUCKETS,
) -> Optional[Histogram]:
    """Coarse histogram from per-chunk (min, max, count) summaries.

    Each chunk's row count is spread uniformly across the buckets its
    [min, max] range covers — no per-value pass required.
    """
    if not chunk_bounds:
        return None
    low = min(bound[0] for bound in chunk_bounds)
    high = max(bound[1] for bound in chunk_bounds)
    if low == high:
        return Histogram(
            low=low, high=high, counts=[sum(b[2] for b in chunk_bounds)]
        )
    histogram = Histogram(low=low, high=high, counts=[0] * buckets)
    counts = histogram.counts
    for chunk_low, chunk_high, count in chunk_bounds:
        first = histogram._bucket_of(chunk_low)
        last = histogram._bucket_of(chunk_high)
        span = last - first + 1
        share, remainder = divmod(count, span)
        for bucket in range(first, last + 1):
            counts[bucket] += share
        counts[last] += remainder
    return histogram


def analyze(db, buckets: int = HISTOGRAM_BUCKETS) -> Dict[str, TableStats]:
    """ANALYZE every table of a database; returns stats keyed by name.

    Also attaches the stats to each table (``table.statistics``) so the
    planner's cardinality estimator finds them, and so subsequent
    inserts keep them incrementally fresh.
    """
    collected: Dict[str, TableStats] = {}
    for name in db.table_names:
        table = db.table(name)
        collected[name] = table.analyze(buckets=buckets)
    return collected
