"""Table/column statistics: the ANALYZE subsystem.

The paper's Appendix D optimization procedure presumes the system can
*compare the cost* of technique/plan combinations.  This module supplies
the raw material: per-table row counts and per-column statistics —
distinct counts (exact below a threshold, a KMV sketch above it),
min/max, null fraction, and an equi-width histogram — collected by
:func:`analyze` and kept incrementally fresh on insert.

The estimators built on top live in :mod:`repro.engine.cardinality`
(selectivity) and :mod:`repro.engine.cost` (calibrated unit costs).

Everything here is deterministic: the sketch hashes values with BLAKE2b
rather than Python's per-process-salted ``hash``, so two runs over the
same data produce identical estimates.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

#: Above this many *distinct* values a column's exact value set is
#: converted into a KMV sketch (bounded memory, bounded relative error).
EXACT_DISTINCT_THRESHOLD = 4096

#: Number of minimum hashes retained by the KMV sketch.
KMV_SIZE = 256

#: Default bucket count for equi-width histograms.
HISTOGRAM_BUCKETS = 32

_HASH_SPACE = float(2**64)


def stable_hash64(value: Any) -> int:
    """A 64-bit hash that is stable across processes and runs.

    Python's builtin ``hash`` is salted per process for strings, which
    would make distinct-count estimates non-reproducible; BLAKE2b of the
    value's typed repr is not.
    """
    data = f"{type(value).__name__}:{value!r}".encode("utf-8")
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


class KMVSketch:
    """K-minimum-values distinct-count estimator.

    Keeps the ``k`` smallest 64-bit hashes seen.  With ``m`` distinct
    values hashed uniformly into [0, 2^64), the ``k``-th smallest hash
    sits near ``k/m`` of the space, so ``m ≈ (k-1) * 2^64 / h_k``.
    Expected relative error is about ``1/sqrt(k-2)`` (~6% at k=256).
    """

    __slots__ = ("k", "_hashes", "_members")

    def __init__(self, k: int = KMV_SIZE) -> None:
        self.k = k
        self._hashes: List[int] = []  # sorted ascending, at most k
        self._members: set = set()

    def add(self, value: Any) -> None:
        self.add_hash(stable_hash64(value))

    def add_hash(self, h: int) -> None:
        if h in self._members:
            return
        hashes = self._hashes
        if len(hashes) >= self.k:
            if h >= hashes[-1]:
                return
            self._members.discard(hashes[-1])
            hashes.pop()
        import bisect

        bisect.insort(hashes, h)
        self._members.add(h)

    def estimate(self) -> float:
        hashes = self._hashes
        if len(hashes) < self.k:
            return float(len(hashes))
        return (self.k - 1) * _HASH_SPACE / float(hashes[-1])

    def __len__(self) -> int:
        return len(self._hashes)


class DistinctCounter:
    """Hybrid distinct counter: exact set, spilling to a KMV sketch.

    Exact for small tables (below :data:`EXACT_DISTINCT_THRESHOLD`
    distinct values), sketched above — the shape the tentpole asks for.
    """

    __slots__ = ("threshold", "_exact", "_sketch")

    def __init__(self, threshold: int = EXACT_DISTINCT_THRESHOLD) -> None:
        self.threshold = threshold
        self._exact: Optional[set] = set()
        self._sketch: Optional[KMVSketch] = None

    @property
    def is_exact(self) -> bool:
        return self._exact is not None

    def add(self, value: Any) -> None:
        if self._exact is not None:
            self._exact.add(value)
            if len(self._exact) > self.threshold:
                self._spill()
        else:
            assert self._sketch is not None
            self._sketch.add(value)

    def _spill(self) -> None:
        sketch = KMVSketch()
        assert self._exact is not None
        for value in self._exact:
            sketch.add(value)
        self._exact = None
        self._sketch = sketch

    def estimate(self) -> float:
        if self._exact is not None:
            return float(len(self._exact))
        assert self._sketch is not None
        return self._sketch.estimate()


@dataclass
class Histogram:
    """Equi-width histogram over a numeric column.

    ``counts[i]`` holds values in ``[low + i*width, low + (i+1)*width)``
    (last bucket closed).  Values inserted later that fall outside the
    original range are clamped into the end buckets, so incremental
    maintenance degrades gracefully instead of going stale.
    """

    low: float
    high: float
    counts: List[int]

    @property
    def total(self) -> int:
        return sum(self.counts)

    @property
    def width(self) -> float:
        return (self.high - self.low) / len(self.counts)

    @classmethod
    def build(cls, values: Sequence[float], buckets: int = HISTOGRAM_BUCKETS) -> Optional["Histogram"]:
        if not values:
            return None
        low = float(min(values))
        high = float(max(values))
        if low == high:
            return cls(low=low, high=high, counts=[len(values)])
        histogram = cls(low=low, high=high, counts=[0] * buckets)
        for value in values:
            histogram.add(float(value))
        return histogram

    def _bucket_of(self, value: float) -> int:
        if self.high == self.low:
            return 0
        position = int((value - self.low) / (self.high - self.low) * len(self.counts))
        return min(max(position, 0), len(self.counts) - 1)

    def add(self, value: float) -> None:
        self.counts[self._bucket_of(value)] += 1

    def fraction_below(self, value: float, inclusive: bool) -> float:
        """Estimated fraction of values ``< value`` (``<=`` if inclusive).

        Linear interpolation inside the containing bucket; the standard
        equi-width estimator.
        """
        total = self.total
        if total == 0:
            return 0.0
        if value < self.low:
            return 0.0
        if value > self.high or (value == self.high and inclusive):
            return 1.0
        if self.high == self.low:
            # Single-point histogram: all mass at one value.
            return 1.0 if (inclusive and value >= self.low) else 0.0
        position = self._bucket_of(value)
        below = sum(self.counts[:position])
        bucket_low = self.low + position * self.width
        within = (value - bucket_low) / self.width
        below += self.counts[position] * min(max(within, 0.0), 1.0)
        return min(max(below / total, 0.0), 1.0)

    def fraction_between(
        self,
        low: Optional[float],
        high: Optional[float],
        low_strict: bool = False,
        high_strict: bool = False,
    ) -> float:
        upper = 1.0 if high is None else self.fraction_below(high, inclusive=not high_strict)
        lower = 0.0 if low is None else self.fraction_below(low, inclusive=low_strict)
        return min(max(upper - lower, 0.0), 1.0)


@dataclass
class ColumnStats:
    """Statistics for one column of one table."""

    name: str
    non_null: int = 0
    nulls: int = 0
    minimum: Optional[Any] = None
    maximum: Optional[Any] = None
    distinct: DistinctCounter = field(default_factory=DistinctCounter)
    histogram: Optional[Histogram] = None

    @property
    def row_count(self) -> int:
        return self.non_null + self.nulls

    @property
    def null_fraction(self) -> float:
        total = self.row_count
        return self.nulls / total if total else 0.0

    @property
    def distinct_count(self) -> float:
        return self.distinct.estimate()

    def note(self, value: Any) -> None:
        """Incremental update for one inserted value."""
        if value is None:
            self.nulls += 1
            return
        self.non_null += 1
        self.distinct.add(value)
        try:
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
        except TypeError:
            pass  # mixed un-orderable types: keep whatever we have
        if self.histogram is not None and isinstance(value, (int, float)) and not isinstance(value, bool):
            self.histogram.add(float(value))


@dataclass
class TableStats:
    """Statistics for one table: row count plus per-column stats."""

    table_name: str
    row_count: int = 0
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name.lower())

    def note_insert(self, row: Sequence[Any], column_names: Sequence[str]) -> None:
        """Keep the statistics fresh for one appended row."""
        self.row_count += 1
        for name, value in zip(column_names, row):
            stats = self.columns.get(name)
            if stats is not None:
                stats.note(value)

    def summary(self) -> str:
        lines = [f"{self.table_name}: {self.row_count} rows"]
        for name in sorted(self.columns):
            c = self.columns[name]
            lines.append(
                f"  {name}: ndv~{c.distinct_count:.0f} "
                f"null={c.null_fraction:.3f} min={c.minimum!r} max={c.maximum!r}"
                + (" hist" if c.histogram is not None else "")
            )
        return "\n".join(lines)


def analyze_table(table, buckets: int = HISTOGRAM_BUCKETS) -> TableStats:
    """Collect full statistics for one table (the ANALYZE primitive).

    ``table`` is a :class:`repro.storage.table.Table`; typed loosely to
    avoid an import cycle (table.py attaches the result to itself).
    """
    names = table.schema.column_names
    stats = TableStats(table_name=table.name, row_count=len(table))
    per_column: List[ColumnStats] = [ColumnStats(name=name) for name in names]
    numeric_values: List[List[float]] = [[] for _ in names]
    for row in table.rows:
        for position, value in enumerate(row):
            column = per_column[position]
            if value is None:
                column.nulls += 1
                continue
            column.non_null += 1
            column.distinct.add(value)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                numeric_values[position].append(float(value))
    for position, column in enumerate(per_column):
        values = numeric_values[position]
        if values:
            column.minimum = min(values)
            column.maximum = max(values)
            column.histogram = Histogram.build(values, buckets=buckets)
        else:
            # Non-numeric: min/max by value order when orderable.
            observed = [
                row[position] for row in table.rows if row[position] is not None
            ]
            if observed:
                try:
                    column.minimum = min(observed)
                    column.maximum = max(observed)
                except TypeError:
                    pass
        stats.columns[column.name] = column
    return stats


def analyze(db, buckets: int = HISTOGRAM_BUCKETS) -> Dict[str, TableStats]:
    """ANALYZE every table of a database; returns stats keyed by name.

    Also attaches the stats to each table (``table.statistics``) so the
    planner's cardinality estimator finds them, and so subsequent
    inserts keep them incrementally fresh.
    """
    collected: Dict[str, TableStats] = {}
    for name in db.table_names:
        table = db.table(name)
        collected[name] = table.analyze(buckets=buckets)
    return collected
