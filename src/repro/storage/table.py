"""In-memory tables with optional secondary indexes."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CatalogError, SchemaError
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.schema import TableSchema
from repro.storage.statistics import (
    HISTOGRAM_BUCKETS,
    TableStats,
    analyze_table,
    sketch_table,
)

Row = Tuple[Any, ...]


class Table:
    """An append-oriented, schema-validated, in-memory relation.

    Rows are tuples positioned per the schema.  Row ids are stable list
    positions, which the index layer relies on.  The table is the unit
    the Smart-Iceberg rewrites operate over: a reducer produces a new
    (smaller) ``Table``, and NLJP's cache is itself a ``Table``.
    """

    def __init__(self, name: str, schema: TableSchema) -> None:
        self.name = name.lower()
        self.schema = schema
        self._rows: List[Row] = []
        self._indexes: Dict[str, HashIndex | SortedIndex] = {}
        self._statistics: Optional[TableStats] = None
        self._column_store: Optional[Any] = None
        # Monotonic change counters consumed by the serving layer's
        # plan cache: ``data_version`` advances on every mutation,
        # ``stats_version`` on every ANALYZE/invalidate.  A cached plan
        # is valid only while both are unchanged (see
        # repro.serve.plan_cache).
        self._data_version = 0
        self._stats_version = 0
        # Online sketch statistics cache: (data_version, TableStats).
        # Unlike full statistics, sketches are never incrementally
        # maintained — any mutation simply invalidates the cache.
        self._sketch_statistics: Optional[Tuple[int, TableStats]] = None

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self)} rows)"

    @property
    def rows(self) -> Sequence[Row]:
        return self._rows

    def row(self, row_id: int) -> Row:
        return self._rows[row_id]

    def column_values(self, name: str) -> List[Any]:
        """All values of one column, in row order (useful for stats)."""
        position = self.schema.index_of(name)
        return [row[position] for row in self._rows]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[Any]) -> int:
        """Validate and append one row; returns its row id."""
        validated = self.schema.validate_row(row)
        row_id = len(self._rows)
        self._rows.append(validated)
        for index in self._indexes.values():
            index.insert(row_id, validated)
        if self._statistics is not None:
            self._statistics.note_insert(validated, self.schema.column_names)
        self._column_store = None
        self._data_version += 1
        return row_id

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def insert_dicts(self, records: Iterable[Dict[str, Any]]) -> int:
        """Append rows given as ``{column: value}`` mappings."""
        names = self.schema.column_names
        return self.insert_many(
            tuple(record.get(name) for name in names) for record in records
        )

    def truncate(self) -> None:
        self._rows.clear()
        for index in self._indexes.values():
            index.clear()
        self._statistics = None
        self._column_store = None
        self._data_version += 1
        self._stats_version += 1

    # ------------------------------------------------------------------
    # Columnar image
    # ------------------------------------------------------------------
    def column_store(self):
        """The table's columnar image (typed columns + zone maps).

        Built lazily by the columnar execution mode, cached until the
        next mutation.  Returns a
        :class:`repro.engine.layout.ColumnStore`.
        """
        if self._column_store is None:
            from repro.engine.layout import ColumnStore

            self._column_store = ColumnStore.from_rows(
                self._rows, self.schema.column_names
            )
        return self._column_store

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def statistics(self) -> Optional[TableStats]:
        """Collected statistics, or ``None`` before ``analyze()``."""
        return self._statistics

    def analyze(self, buckets: int = HISTOGRAM_BUCKETS) -> TableStats:
        """(Re)collect full statistics; kept fresh by later inserts."""
        self._statistics = analyze_table(self, buckets=buckets)
        self._stats_version += 1
        return self._statistics

    def invalidate_statistics(self) -> None:
        self._statistics = None
        self._stats_version += 1

    def sketch_statistics(self) -> TableStats:
        """Cheap sketch-backed statistics (no full ANALYZE pass).

        Built from the columnar image's per-chunk zone maps plus a
        strided KMV distinct sample (see
        :func:`repro.storage.statistics.sketch_table`), cached until
        the next mutation.  The feedback-aware estimator consults this
        for tables that were never ANALYZEd.
        """
        cached = self._sketch_statistics
        if cached is not None and cached[0] == self._data_version:
            return cached[1]
        stats = sketch_table(self)
        self._sketch_statistics = (self._data_version, stats)
        return stats

    @property
    def data_version(self) -> int:
        """Monotonic counter advanced by every insert/truncate."""
        return self._data_version

    @property
    def stats_version(self) -> int:
        """Monotonic counter advanced by ANALYZE/invalidate/truncate."""
        return self._stats_version

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def create_index(
        self, name: str, columns: Sequence[str], kind: str = "hash"
    ) -> "HashIndex | SortedIndex":
        """Create and bulk-load a secondary index.

        ``kind`` is ``"hash"`` (equality) or ``"sorted"`` (range); see
        :mod:`repro.storage.index`.
        """
        key = name.lower()
        if key in self._indexes:
            raise CatalogError(f"index {name!r} already exists on {self.name!r}")
        positions = [self.schema.index_of(column) for column in columns]
        if kind == "hash":
            index: HashIndex | SortedIndex = HashIndex(key, positions)
        elif kind == "sorted":
            index = SortedIndex(key, positions)
        else:
            raise SchemaError(f"unknown index kind {kind!r}")
        for row_id, row in enumerate(self._rows):
            index.insert(row_id, row)
        self._indexes[key] = index
        return index

    def drop_index(self, name: str) -> None:
        try:
            del self._indexes[name.lower()]
        except KeyError:
            raise CatalogError(f"no index {name!r} on {self.name!r}") from None

    @property
    def indexes(self) -> Dict[str, "HashIndex | SortedIndex"]:
        return dict(self._indexes)

    def find_hash_index(self, columns: Sequence[str]) -> Optional[HashIndex]:
        """A hash index exactly covering ``columns`` (order-insensitive)."""
        wanted = frozenset(self.schema.index_of(column) for column in columns)
        for index in self._indexes.values():
            if isinstance(index, HashIndex) and frozenset(index.column_positions) == wanted:
                return index
        return None

    def find_sorted_index(self, leading_column: str) -> Optional[SortedIndex]:
        """A sorted index whose leading key column is ``leading_column``."""
        wanted = self.schema.index_of(leading_column)
        for index in self._indexes.values():
            if isinstance(index, SortedIndex) and index.column_positions[0] == wanted:
                return index
        return None

    # ------------------------------------------------------------------
    # Utility
    # ------------------------------------------------------------------
    def to_dicts(self) -> List[Dict[str, Any]]:
        names = self.schema.column_names
        return [dict(zip(names, row)) for row in self._rows]

    def estimated_bytes(self) -> int:
        """Rough storage footprint, used by the Figure 3 cache-size bench.

        Approximates what a PostgreSQL heap would charge: per-row header
        plus per-value payload (8 bytes for numerics, string length for
        text, 1 for bools/NULLs).
        """
        per_row_overhead = 24
        total = 0
        for row in self._rows:
            total += per_row_overhead
            for value in row:
                if value is None or isinstance(value, bool):
                    total += 1
                elif isinstance(value, str):
                    total += len(value)
                else:
                    total += 8
        return total
