"""SQL value types and three-valued-logic helpers.

The engine stores values as plain Python objects (``int``, ``float``,
``str``, ``bool``, ``None``) and uses this module to validate them
against declared column types and to implement SQL's NULL-aware
comparison semantics.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from repro.errors import SchemaError

#: Sentinel used in documentation; SQL NULL is represented by ``None``.
NULL = None


class SqlType(enum.Enum):
    """Column types supported by the storage layer."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"

    def validate(self, value: Any) -> Any:
        """Check ``value`` against this type, returning a normalized copy.

        ``None`` (SQL NULL) is accepted by every type.  Integers are
        accepted for FLOAT columns and widened; bools are *not* accepted
        for numeric columns (Python's bool-is-int would otherwise let
        ``True`` slip into INTEGER columns silently).
        """
        if value is None:
            return None
        if self is SqlType.INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"expected INTEGER, got {value!r}")
            return value
        if self is SqlType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"expected FLOAT, got {value!r}")
            return float(value)
        if self is SqlType.TEXT:
            if not isinstance(value, str):
                raise SchemaError(f"expected TEXT, got {value!r}")
            return value
        if self is SqlType.BOOLEAN:
            if not isinstance(value, bool):
                raise SchemaError(f"expected BOOLEAN, got {value!r}")
            return value
        raise SchemaError(f"unknown type {self!r}")  # pragma: no cover

    @property
    def is_numeric(self) -> bool:
        """True for types on which arithmetic and ordering are defined."""
        return self in (SqlType.INTEGER, SqlType.FLOAT)


def infer_type(value: Any) -> SqlType:
    """Infer the narrowest :class:`SqlType` for a Python value.

    Raises :class:`SchemaError` for ``None`` (NULL carries no type) and
    for unsupported Python types.
    """
    if isinstance(value, bool):
        return SqlType.BOOLEAN
    if isinstance(value, int):
        return SqlType.INTEGER
    if isinstance(value, float):
        return SqlType.FLOAT
    if isinstance(value, str):
        return SqlType.TEXT
    raise SchemaError(f"cannot infer SQL type for {value!r}")


def sql_equal(a: Any, b: Any) -> Optional[bool]:
    """SQL ``=``: returns ``None`` (unknown) if either side is NULL."""
    if a is None or b is None:
        return None
    return a == b


def sql_compare(a: Any, b: Any) -> Optional[int]:
    """Three-valued comparison: -1/0/+1, or ``None`` if either is NULL.

    Mixed int/float comparisons follow Python semantics; comparing
    incomparable types (e.g. TEXT with INTEGER) raises ``TypeError`` so
    that bugs surface rather than silently ordering arbitrarily.
    """
    if a is None or b is None:
        return None
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


def sql_and(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    """Three-valued logical AND (Kleene logic)."""
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def sql_or(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    """Three-valued logical OR (Kleene logic)."""
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def sql_not(a: Optional[bool]) -> Optional[bool]:
    """Three-valued logical NOT (Kleene logic)."""
    if a is None:
        return None
    return not a


def is_true(a: Optional[bool]) -> bool:
    """Collapse three-valued logic to a WHERE-clause decision.

    SQL keeps a row only when the predicate is *true*; both false and
    unknown reject it.
    """
    return a is True
