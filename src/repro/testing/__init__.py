"""Testing utilities: fault injection and the lock-order watchdog."""

from repro.testing.faults import FAULT_SITES, FaultPlan, FaultSpec
from repro.testing.lockwatch import (
    LockOrderError,
    LockOrderWatchdog,
    WatchedLock,
    watch_registry,
    watch_server,
    watch_session,
)

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "LockOrderError",
    "LockOrderWatchdog",
    "WatchedLock",
    "watch_registry",
    "watch_server",
    "watch_session",
]
