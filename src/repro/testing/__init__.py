"""Testing utilities: the deterministic fault-injection harness."""

from repro.testing.faults import FAULT_SITES, FaultPlan, FaultSpec

__all__ = ["FAULT_SITES", "FaultPlan", "FaultSpec"]
