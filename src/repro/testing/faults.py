"""Deterministic fault injection for the execution governor.

A :class:`FaultPlan` injects failures or slowdowns at *named sites*
threaded through the engine and optimizer:

========== ==========================================================
site       observed at
========== ==========================================================
scan       every scan row/batch boundary (all scan operators)
join-pair  every outer row/batch boundary of every join operator
cache-insert  immediately before an NLJP cache ``put``
inner-eval immediately before an NLJP inner-query (Q_R) evaluation
qe         before each subsumption-predicate derivation (optimizer)
reducer    before each a-priori reducer build (optimizer)
plan-cache before each shared plan-cache lookup (serving layer)
admission  before each admission-controller decision (serving layer)
========== ==========================================================

Triggers are deterministic: either *by count* (``after`` — fire from
the (after+1)-th hit of the site on) or *by seed* (``probability``
with the plan's seed — a per-spec ``random.Random`` stream, so the
same plan replays the same trigger sequence).  There is **no
wall-clock randomness**: even "slowdowns" do not sleep — they report
virtual seconds that the governor adds to its deadline clock, so
deadline tests are exact and instant.

Injected errors default to :class:`~repro.errors.InjectedFaultError`;
a spec may instead carry any exception instance or factory (e.g. a
``QuantifierEliminationError`` to exercise the optimizer's per-
technique fallback).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import InjectedFaultError

#: Every site the engine/optimizer/server reports to a fault plan.
FAULT_SITES = (
    "scan",
    "join-pair",
    "cache-insert",
    "inner-eval",
    "qe",
    "reducer",
    "plan-cache",
    "admission",
)

FaultException = Union[BaseException, Callable[[], BaseException]]


@dataclass
class FaultSpec:
    """One injection rule.

    ``kind``
        ``"error"`` raises (default :class:`InjectedFaultError`);
        ``"slow"`` adds ``delay_seconds`` of *virtual* time to the
        governor's deadline clock.
    ``after``
        Count trigger: fire on every hit strictly after this many
        hits of the site (``after=0`` fires from the first hit).
    ``probability``
        Seed trigger: fire per hit with this probability, drawn from
        the plan's deterministic per-spec random stream.  Mutually
        exclusive with a non-zero ``after``.
    ``times``
        Maximum number of firings (``None`` = unlimited).
    ``exception``
        Exception instance or zero-argument factory to raise instead
        of :class:`InjectedFaultError` (``kind="error"`` only).
    """

    site: str
    kind: str = "error"
    after: int = 0
    probability: Optional[float] = None
    times: Optional[int] = 1
    delay_seconds: float = 0.0
    message: str = ""
    exception: Optional[FaultException] = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; valid sites: {FAULT_SITES}"
            )
        if self.kind not in ("error", "slow"):
            raise ValueError(f"fault kind must be 'error' or 'slow', got {self.kind!r}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.probability is not None and not (0.0 <= self.probability <= 1.0):
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.probability is not None and self.after:
            raise ValueError("use either 'after' (count) or 'probability' (seed)")
        if self.kind == "slow" and self.delay_seconds < 0:
            raise ValueError(f"delay_seconds must be >= 0, got {self.delay_seconds}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")


class FaultPlan:
    """A deterministic schedule of faults over named sites.

    The engine calls :meth:`observe` at each site hit; the plan counts
    hits per site, fires the specs whose triggers match, and either
    raises or returns the total virtual delay for this hit.  A plan is
    single-use per logical experiment but may be observed across the
    optimizer and execution phases of one query.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0) -> None:
        self.specs = list(specs)
        self.seed = seed
        self._hits: Dict[str, int] = {site: 0 for site in FAULT_SITES}
        self._fired: List[int] = [0] * len(self.specs)
        # One independent, reproducibly-seeded stream per spec so the
        # firing pattern of one spec never perturbs another's.
        self._rngs = [
            random.Random(f"{seed}:{index}:{spec.site}")
            for index, spec in enumerate(self.specs)
        ]

    # ------------------------------------------------------------------
    def hits(self, site: str) -> int:
        """How many times ``site`` has been observed so far."""
        return self._hits[site]

    def fired(self, spec_index: int = 0) -> int:
        """How many times the given spec has fired."""
        return self._fired[spec_index]

    # ------------------------------------------------------------------
    def _triggers(self, index: int, spec: FaultSpec, hit: int) -> bool:
        if spec.times is not None and self._fired[index] >= spec.times:
            return False
        if spec.probability is not None:
            return self._rngs[index].random() < spec.probability
        return hit > spec.after

    def _raise(self, spec: FaultSpec, site: str, hit: int) -> None:
        exception = spec.exception
        if exception is None:
            message = spec.message or f"injected fault at {site} (hit #{hit})"
            raise InjectedFaultError(message, site=site)
        if isinstance(exception, BaseException):
            raise exception
        raise exception()

    def observe(self, site: str) -> float:
        """Report one hit of ``site``; raise or return virtual delay.

        Returns the summed ``delay_seconds`` of every "slow" spec that
        fired on this hit (0.0 when none did).  An "error" spec that
        fires raises instead.
        """
        if site not in self._hits:
            raise ValueError(
                f"unknown fault site {site!r}; valid sites: {FAULT_SITES}"
            )
        self._hits[site] += 1
        hit = self._hits[site]
        delay = 0.0
        for index, spec in enumerate(self.specs):
            if spec.site != site or not self._triggers(index, spec, hit):
                continue
            self._fired[index] += 1
            if spec.kind == "slow":
                delay += spec.delay_seconds
            else:
                self._raise(spec, site, hit)
        return delay
