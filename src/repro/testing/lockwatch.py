"""Runtime lock-order watchdog: the dynamic oracle for ISSUE 9.

The static pass (:mod:`repro.analysis.concurrency`) extracts a lock
*acquisition-order* graph by reading code; it is deliberately
under-approximate (unresolvable calls add no edges) and coarse (one
node per lock *declaration*).  This module is the complement: wrap the
named locks of a live server, record every witnessed acquisition order
at runtime, and fail the moment two locks are ever taken in both
orders — the classic ABBA deadlock precondition, caught even when the
interleaving that would actually deadlock never happens in the run.

Usage in tests::

    watchdog = LockOrderWatchdog()
    server = IcebergServer(db)
    watch_server(server, watchdog)
    ... run the 8-thread soak ...
    watchdog.assert_no_inversions()

Witnessed-order semantics:

* Acquiring ``B`` while holding ``A`` records the edge ``A -> B``.
* An acquisition whose new edge closes a cycle in the witnessed graph
  is an **inversion**; it is recorded (and raised immediately when
  ``strict=True``).
* Re-acquiring the *same instance* is reentrancy, not ordering — no
  edge.  Nesting two *different instances of the same declaration*
  (same name) is reported: no global order is defined between them,
  so both orders are one interleaving away.
* ``Condition.wait`` releases the underlying lock for the duration of
  the wait: the watchdog pops the condition from the thread's held
  stack and re-pushes it when the wait returns, so a slot-holder
  sleeping in ``AdmissionController.acquire`` does not poison every
  lock other threads touch meanwhile.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple


class LockOrderError(AssertionError):
    """A witnessed lock-order inversion (potential ABBA deadlock)."""


class WatchedLock:
    """Proxy around a Lock/RLock/Condition that reports to a watchdog.

    Implements the full context-manager + Condition surface so it can
    stand in for any ``threading`` lock the serving layer uses.
    """

    def __init__(self, watchdog: "LockOrderWatchdog", inner: Any, name: str) -> None:
        self._watchdog = watchdog
        self._inner = inner
        self.name = name

    # -- lock surface ---------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._watchdog._note_acquire(self)
        return acquired

    def release(self) -> None:
        self._watchdog._note_release(self)
        self._inner.release()

    def __enter__(self) -> "WatchedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.release()
        return False

    def locked(self) -> bool:
        inner_locked = getattr(self._inner, "locked", None)
        return bool(inner_locked()) if callable(inner_locked) else False

    # -- condition surface ------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> bool:
        # Condition.wait releases the lock while sleeping; mirror that
        # in the held stack so waiting threads don't accumulate edges.
        self._watchdog._note_release(self)
        try:
            return self._inner.wait(timeout)
        finally:
            self._watchdog._note_acquire(self)

    def wait_for(
        self, predicate: Callable[[], bool], timeout: Optional[float] = None
    ) -> bool:
        self._watchdog._note_release(self)
        try:
            return self._inner.wait_for(predicate, timeout)
        finally:
            self._watchdog._note_acquire(self)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()

    def __repr__(self) -> str:
        return f"WatchedLock({self.name!r})"


class LockOrderWatchdog:
    """Records witnessed lock-acquisition orders; flags inversions.

    Thread-safe; one watchdog instance observes any number of locks
    across any number of threads.  ``strict=True`` raises
    :class:`LockOrderError` at the offending acquisition (pinpointing
    the stack); the default collects into :attr:`inversions` so a soak
    can finish and assert emptiness.
    """

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self._mutex = threading.Lock()
        #: (held, acquired) -> description of the first witness.
        self._edges: Dict[Tuple[str, str], str] = {}  # guarded-by: self._mutex
        self._tls = threading.local()
        self.inversions: List[str] = []  # guarded-by: self._mutex
        self.acquisitions = 0  # guarded-by: self._mutex

    # -- wrapping ---------------------------------------------------------
    def wrap(self, inner: Any, name: str) -> WatchedLock:
        """A watched proxy for ``inner``; idempotent on re-wrap."""
        if isinstance(inner, WatchedLock):
            return inner
        return WatchedLock(self, inner, name)

    def wrap_attr(self, obj: Any, attr: str, name: str) -> WatchedLock:
        """Replace ``obj.<attr>`` with a watched proxy, in place."""
        wrapped = self.wrap(getattr(obj, attr), name)
        setattr(obj, attr, wrapped)
        return wrapped

    def lock_factory(
        self, name: str, inner_factory: Callable[[], Any] = threading.RLock
    ) -> Callable[[], WatchedLock]:
        """A factory producing watched locks that all share ``name``.

        Matches the static checker's per-declaration coarsening: every
        ``PlanCacheEntry.lock`` is one graph node.  Inject into
        ``PlanCache(lock_factory=...)`` so entry locks are born watched
        — there is no store-then-wrap race window.
        """

        def make() -> WatchedLock:
            return self.wrap(inner_factory(), name)

        return make

    # -- bookkeeping --------------------------------------------------------
    def _stack(self) -> List[Tuple[str, int]]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _note_acquire(self, lock: WatchedLock) -> None:
        stack = self._stack()
        held_names = [
            name for name, instance in stack if instance != id(lock)
        ]
        stack.append((lock.name, id(lock)))
        with self._mutex:
            self.acquisitions += 1
            thread = threading.current_thread().name
            for held in held_names:
                key = (held, lock.name)
                if key in self._edges:
                    continue
                if held == lock.name:
                    self._record_inversion(
                        f"two instances of {lock.name!r} nested on thread "
                        f"{thread!r}: no global order is defined between "
                        f"locks of one declaration"
                    )
                elif self._has_path(lock.name, held):
                    self._record_inversion(
                        f"acquired {lock.name!r} while holding {held!r} on "
                        f"thread {thread!r}, but the order "
                        f"{lock.name!r} -> {held!r} was already witnessed "
                        f"({self._edges.get((lock.name, held), 'via a chain')})"
                    )
                self._edges[key] = f"thread {thread!r}"

    def _note_release(self, lock: WatchedLock) -> None:
        stack = self._stack()
        for position in range(len(stack) - 1, -1, -1):
            if stack[position][1] == id(lock):
                del stack[position]
                return

    def _record_inversion(self, message: str) -> None:  # requires-lock: self._mutex
        self.inversions.append(message)
        if self.strict:
            raise LockOrderError(message)

    def _has_path(self, src: str, dst: str) -> bool:  # requires-lock: self._mutex
        """Is ``dst`` reachable from ``src`` in the witnessed graph?"""
        seen = {src}
        frontier = [src]
        while frontier:
            node = frontier.pop()
            if node == dst:
                return True
            for held, acquired in self._edges:
                if held == node and acquired not in seen:
                    seen.add(acquired)
                    frontier.append(acquired)
        return False

    # -- reporting ------------------------------------------------------
    def witnessed_edges(self) -> Dict[Tuple[str, str], str]:
        with self._mutex:
            return dict(self._edges)

    def assert_no_inversions(self) -> None:
        with self._mutex:
            if self.inversions:
                raise LockOrderError(
                    f"{len(self.inversions)} lock-order inversion(s):\n  "
                    + "\n  ".join(self.inversions)
                )


def watch_registry(
    registry: Any,
    watchdog: LockOrderWatchdog,
    name: str = "MetricsRegistry._lock",
) -> WatchedLock:
    """Instrument a metrics registry's shared lock.

    Metrics alias the registry lock at registration time, so metrics
    that already exist are re-aliased to the proxy here; metrics
    registered afterwards pick it up naturally.  Returns the proxy —
    ``proxy._inner`` is the original lock, should a test need to
    restore a shared (module-global) registry afterwards.
    """
    shared = watchdog.wrap_attr(registry, "_lock", name)
    for metric in registry._metrics.values():
        metric._lock = shared
    return shared


def unwatch_registry(registry: Any) -> None:
    """Undo :func:`watch_registry` (for module-global registries)."""
    shared = registry._lock
    if not isinstance(shared, WatchedLock):
        return
    registry._lock = shared._inner
    for metric in registry._metrics.values():
        if metric._lock is shared:
            metric._lock = shared._inner


def watch_server(server: Any, watchdog: LockOrderWatchdog) -> LockOrderWatchdog:
    """Instrument every serving-layer lock of an ``IcebergServer``.

    Names mirror the static checker's identities so a watchdog report
    reads against the same graph the analyzer prints.  Plan-cache
    *entry* locks are covered through the injected factory: entries
    stored after this call are born watched.
    """
    plan_cache = server.plan_cache
    watchdog.wrap_attr(plan_cache, "_lock", "PlanCache._lock")
    plan_cache._lock_factory = watchdog.lock_factory("PlanCacheEntry.lock")
    watchdog.wrap_attr(
        server.admission, "_condition", "AdmissionController._condition"
    )
    for breaker in server.breakers.values():
        watchdog.wrap_attr(breaker, "_lock", "CircuitBreaker._lock")
    watchdog.wrap_attr(server, "_engines_lock", "IcebergServer._engines_lock")
    watchdog.wrap_attr(server, "_sessions_lock", "IcebergServer._sessions_lock")
    watch_registry(server._registry, watchdog)
    return watchdog


def watch_session(session: Any, watchdog: LockOrderWatchdog) -> LockOrderWatchdog:
    """Instrument one session's lock (sessions are created per client)."""
    watchdog.wrap_attr(session, "_lock", "Session._lock")
    return watchdog
