"""Synthetic workloads and the paper's query templates."""

from repro.workloads.baseball import (
    BaseballConfig,
    generate_seasons,
    load_batting,
    load_unpivoted,
    make_batting_db,
    unpivot_careers,
)
from repro.workloads.basket import (
    BasketConfig,
    generate_baskets,
    load_baskets,
    load_discount_schema,
    make_basket_db,
)
from repro.workloads.cyclic import (
    CyclicConfig,
    generate_edges,
    load_edges,
    make_cyclic_db,
    square_query,
    triangle_hub_query,
    triangle_query,
)
from repro.workloads.products import ProductConfig, generate_products, load_products, make_product_db
from repro.workloads.skewed import SkewedConfig, make_skewed_db, skewed_query
from repro.workloads.queries import (
    PaperQuery,
    complex_query,
    discount_query,
    figure1_queries,
    market_basket_query,
    pairs_query,
    player_skyband_query,
    skyband_query,
)

__all__ = [
    "BaseballConfig",
    "BasketConfig",
    "CyclicConfig",
    "PaperQuery",
    "ProductConfig",
    "SkewedConfig",
    "complex_query",
    "discount_query",
    "figure1_queries",
    "generate_baskets",
    "generate_edges",
    "generate_products",
    "generate_seasons",
    "load_baskets",
    "load_batting",
    "load_discount_schema",
    "load_edges",
    "load_products",
    "load_unpivoted",
    "make_basket_db",
    "make_batting_db",
    "make_cyclic_db",
    "make_product_db",
    "make_skewed_db",
    "market_basket_query",
    "pairs_query",
    "player_skyband_query",
    "skewed_query",
    "skyband_query",
    "square_query",
    "triangle_hub_query",
    "triangle_query",
    "unpivot_careers",
]
