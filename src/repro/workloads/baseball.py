"""Synthetic baseball season statistics.

The paper evaluates on the Lahman MLB season-statistics archive
(3×10^5 rows of player performance).  That dataset is not
redistributable here, so this generator produces a synthetic stand-in
that preserves the properties the experiments depend on:

* heavy-tailed, *correlated* per-season counting stats — Figure 2's
  point is precisely that different attribute pairs have different
  joint distributions, which changes skyband selectivity;
* players with multi-season careers on shared teams (the pairs query
  needs co-membership across years/rounds);
* a composite key (playerid, year, round) with team as a dependent
  attribute.

Correlation model: each player has a latent ``skill`` and a latent
``power``/``speed`` mix.  Hits scale with skill; home runs scale with
skill·power (strongly correlated with hits); stolen bases scale with
skill·(1−power) (weakly/negatively correlated with home runs); walks
and RBIs sit in between.  This yields one strongly-correlated pairing
(h, hr) and one weakly-correlated pairing (hr, sb), matching the two
panels of Figure 2 qualitatively.

Everything is deterministic given ``seed``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple, Optional

from repro.storage.catalog import Database
from repro.storage.schema import TableSchema
from repro.storage.types import SqlType

#: Statistic columns produced per season row.
STAT_COLUMNS = ("b_h", "b_hr", "b_rbi", "b_sb", "b_bb")


@dataclass(frozen=True)
class BaseballConfig:
    """Knobs for the synthetic season-statistics generator."""

    n_rows: int = 10_000
    n_teams: int = 30
    start_year: int = 1980
    n_years: int = 40
    rounds_per_year: int = 1
    mean_career_years: float = 6.0
    seed: int = 2017


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's algorithm; adequate for the small means used here."""
    if lam <= 0:
        return 0
    if lam > 50:
        # Normal approximation keeps generation O(1) for large means.
        return max(0, int(rng.gauss(lam, math.sqrt(lam)) + 0.5))
    threshold = math.exp(-lam)
    k, product = 0, 1.0
    while True:
        product *= rng.random()
        if product <= threshold:
            return k
        k += 1


def generate_seasons(
    config: Optional[BaseballConfig] = None,
) -> List[Tuple[int, int, int, int, int, int, int, int, int]]:
    """Rows of (playerid, year, round, teamid, b_h, b_hr, b_rbi, b_sb, b_bb)."""
    config = config if config is not None else BaseballConfig()
    rng = random.Random(config.seed)
    rows: List[Tuple[int, int, int, int, int, int, int, int, int]] = []
    playerid = 0
    while len(rows) < config.n_rows:
        playerid += 1
        skill = rng.betavariate(2.2, 5.0)  # heavy tail of stars
        power = rng.betavariate(2.0, 2.0)  # hitter vs runner mix
        career = max(1, int(rng.expovariate(1.0 / config.mean_career_years)) + 1)
        first_year = config.start_year + rng.randrange(config.n_years)
        team = rng.randrange(config.n_teams)
        for offset in range(career):
            if len(rows) >= config.n_rows:
                break
            year = first_year + offset
            if rng.random() < 0.15:  # occasional trade
                team = rng.randrange(config.n_teams)
            form = max(0.2, rng.gauss(1.0, 0.25))  # per-season form swing
            base = skill * form
            for round_number in range(1, config.rounds_per_year + 1):
                if len(rows) >= config.n_rows:
                    break
                hits = _poisson(rng, 190 * base)
                home_runs = _poisson(rng, 0.22 * hits * power)
                rbi = _poisson(rng, 0.35 * hits + 1.1 * home_runs)
                stolen = _poisson(rng, 42 * base * (1.0 - power))
                walks = _poisson(rng, 0.30 * hits + 8 * skill)
                rows.append(
                    (
                        playerid,
                        year,
                        round_number,
                        team,
                        hits,
                        home_runs,
                        rbi,
                        stolen,
                        walks,
                    )
                )
    return rows


BATTING_SCHEMA = TableSchema.of(
    ("playerid", SqlType.INTEGER),
    ("year", SqlType.INTEGER),
    ("round", SqlType.INTEGER),
    ("teamid", SqlType.INTEGER),
    ("b_h", SqlType.INTEGER),
    ("b_hr", SqlType.INTEGER),
    ("b_rbi", SqlType.INTEGER),
    ("b_sb", SqlType.INTEGER),
    ("b_bb", SqlType.INTEGER),
)


def load_batting(
    db: Database,
    config: Optional[BaseballConfig] = None,
    table_name: str = "batting",
    with_indexes: bool = True,
) -> None:
    """Create and populate the season-statistics table.

    Declares the composite primary key, nonnegative stat domains (for
    SUM monotonicity), and — when ``with_indexes`` — the secondary
    indexes the paper's experiments assume (hash on the team/season
    join attributes, sorted "BT" indexes on stat pairs).
    """
    config = config if config is not None else BaseballConfig()
    table = db.create_table(
        table_name, BATTING_SCHEMA, primary_key=("playerid", "year", "round")
    )
    table.insert_many(generate_seasons(config))
    for column in STAT_COLUMNS:
        db.declare_domain(table_name, column, lower=0)
    if with_indexes:
        table.create_index(f"{table_name}_team", ["teamid", "year", "round"], kind="hash")
        table.create_index(f"{table_name}_h_hr", ["b_h", "b_hr"], kind="sorted")
        table.create_index(f"{table_name}_hr_sb", ["b_hr", "b_sb"], kind="sorted")


def make_batting_db(
    config: Optional[BaseballConfig] = None, with_indexes: bool = True
) -> Database:
    """A fresh database holding only the batting table."""
    config = config if config is not None else BaseballConfig()
    db = Database()
    load_batting(db, config, with_indexes=with_indexes)
    return db


# ---------------------------------------------------------------------------
# Unpivoted organization (used by the *complex* query, Section 8)
# ---------------------------------------------------------------------------

UNPIVOT_SCHEMA = TableSchema.of(
    ("id", SqlType.INTEGER),
    ("category", SqlType.TEXT),
    ("attr", SqlType.TEXT),
    ("val", SqlType.FLOAT),
)


def unpivot_careers(
    seasons: List[Tuple[int, int, int, int, int, int, int, int, int]],
    n_categories: int = 8,
) -> List[Tuple[int, str, str, float]]:
    """Per-player career totals as (id, category, attr, val) rows.

    ``category`` buckets players (think: position/league) so dominance
    comparisons happen within comparable groups, like Listing 3's
    product categories; it is a function of the player id, so the FD
    ``id → category`` holds by construction.
    """
    totals: Dict[int, List[int]] = {}
    for row in seasons:
        playerid = row[0]
        stats = row[4:]
        accumulated = totals.setdefault(playerid, [0] * len(STAT_COLUMNS))
        for index, value in enumerate(stats):
            accumulated[index] += value
    rows: List[Tuple[int, str, str, float]] = []
    for playerid, stats in sorted(totals.items()):
        category = f"cat{playerid % n_categories}"
        for column, value in zip(STAT_COLUMNS, stats):
            rows.append((playerid, category, column, float(value)))
    return rows


def load_unpivoted(
    db: Database,
    config: Optional[BaseballConfig] = None,
    table_name: str = "perf",
    n_categories: int = 8,
    with_indexes: bool = True,
) -> None:
    """Create and populate the unpivoted key-value table."""
    config = config if config is not None else BaseballConfig()
    table = db.create_table(table_name, UNPIVOT_SCHEMA, primary_key=("id", "attr"))
    db.declare_fd(table_name, ["id"], ["category"])
    table.insert_many(unpivot_careers(generate_seasons(config), n_categories))
    db.declare_domain(table_name, "val", lower=0)
    if with_indexes:
        table.create_index(f"{table_name}_cat_attr", ["category", "attr"], kind="hash")
        table.create_index(f"{table_name}_id", ["id"], kind="hash")
        table.create_index(f"{table_name}_val", ["val"], kind="sorted")
