"""Market-basket workload (Listing 1 and Example 7).

Synthetic transaction data with a Zipfian item popularity distribution
and planted frequent pairs, so the a-priori reduction has measurable
effect: most items are individually infrequent and get filtered by the
reducer before the self-join.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple, Optional

from repro.storage.catalog import Database
from repro.storage.schema import TableSchema
from repro.storage.types import SqlType


@dataclass(frozen=True)
class BasketConfig:
    n_baskets: int = 2_000
    n_items: int = 400
    mean_basket_size: int = 6
    zipf_s: float = 1.2
    n_planted_pairs: int = 10
    planted_support: int = 40
    seed: int = 42


def _zipf_weights(n: int, s: float) -> List[float]:
    return [1.0 / (rank**s) for rank in range(1, n + 1)]


def generate_baskets(config: Optional[BasketConfig] = None) -> List[Tuple[int, str]]:
    """Rows of (bid, item)."""
    config = config if config is not None else BasketConfig()
    rng = random.Random(config.seed)
    weights = _zipf_weights(config.n_items, config.zipf_s)
    items = [f"item{i:04d}" for i in range(config.n_items)]
    rows: List[Tuple[int, str]] = []
    seen = set()

    def add(bid: int, item: str) -> None:
        if (bid, item) not in seen:
            seen.add((bid, item))
            rows.append((bid, item))

    for bid in range(config.n_baskets):
        size = max(1, _approx_poisson(rng, config.mean_basket_size))
        for item in rng.choices(items, weights=weights, k=size):
            add(bid, item)
    # Plant deliberately co-occurring pairs among mid-popularity items.
    base = min(50, max(0, config.n_items - 2 * config.n_planted_pairs - 1))
    n_planted = min(
        config.n_planted_pairs, max(0, (config.n_items - base - 1) // 2)
    )
    planted = [
        (items[base + 2 * pair], items[base + 2 * pair + 1])
        for pair in range(n_planted)
    ]
    for left, right in planted:
        for _ in range(config.planted_support):
            bid = rng.randrange(config.n_baskets)
            add(bid, left)
            add(bid, right)
    return rows


def _approx_poisson(rng: random.Random, lam: float) -> int:
    import math

    threshold = math.exp(-lam)
    k, product = 0, 1.0
    while True:
        product *= rng.random()
        if product <= threshold:
            return k
        k += 1


BASKET_SCHEMA = TableSchema.of(("bid", SqlType.INTEGER), ("item", SqlType.TEXT))


def load_baskets(
    db: Database,
    config: Optional[BasketConfig] = None,
    table_name: str = "basket",
    with_indexes: bool = True,
) -> None:
    config = config if config is not None else BasketConfig()
    table = db.create_table(table_name, BASKET_SCHEMA, primary_key=("bid", "item"))
    table.insert_many(generate_baskets(config))
    if with_indexes:
        table.create_index(f"{table_name}_bid", ["bid"], kind="hash")


def make_basket_db(config: Optional[BasketConfig] = None) -> Database:
    config = config if config is not None else BasketConfig()
    db = Database()
    load_baskets(db, config)
    return db


# ---------------------------------------------------------------------------
# Example 7's discount schema
# ---------------------------------------------------------------------------

DISCOUNT_BASKET_SCHEMA = TableSchema.of(
    ("bid", SqlType.INTEGER), ("item", SqlType.TEXT), ("did", SqlType.INTEGER)
)
DISCOUNT_SCHEMA = TableSchema.of(("did", SqlType.INTEGER), ("rate", SqlType.FLOAT))


def load_discount_schema(
    db: Database,
    n_baskets: int = 500,
    n_items: int = 60,
    n_discounts: int = 12,
    seed: int = 7,
) -> None:
    """Tables Basket(bid, item, did) and Discount(did, rate) of Example 7."""
    rng = random.Random(seed)
    basket = db.create_table(
        "dbasket", DISCOUNT_BASKET_SCHEMA, primary_key=("bid", "item", "did")
    )
    discount = db.create_table("discount", DISCOUNT_SCHEMA, primary_key=("did",))
    discount.insert_many(
        (did, round(0.05 * (1 + did % 5), 2)) for did in range(n_discounts)
    )
    rows = set()
    for bid in range(n_baskets):
        for _ in range(rng.randint(1, 8)):
            item = f"item{rng.randrange(n_items):03d}"
            did = rng.randrange(n_discounts)
            rows.add((bid, item, did))
    basket.insert_many(sorted(rows))
    basket.create_index("dbasket_did", ["did"], kind="hash")
