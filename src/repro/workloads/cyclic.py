"""Cyclic-join workload: a skewed directed graph for WCOJ benchmarks.

Pairwise join plans are asymptotically suboptimal on cyclic join
graphs: a triangle query over a graph with ``m`` edges can produce
``Θ(m²)`` intermediate pairs under any join order, while the AGM bound
caps the output (and a worst-case-optimal join's work) at ``O(m^1.5)``
(Ngo, Porat, Ré, Rudra 2012; Veldhuizen's Leapfrog Triejoin 2014).
This module builds the graph that makes the gap visible: a directed
edge table with a power-law hub skew, so high-degree vertices inflate
pairwise intermediates far past the final triangle count.

Everything is deterministic given ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple, Optional

from repro.storage.catalog import Database
from repro.storage.schema import TableSchema
from repro.storage.types import SqlType


@dataclass(frozen=True)
class CyclicConfig:
    """Knobs for the synthetic directed-graph generator."""

    n_edges: int = 10_000
    #: Vertex-count scale; ~sqrt density keeps triangle counts modest
    #: while hub skew keeps pairwise intermediates large.
    n_nodes: int = 0  # 0 → derived as max(16, n_edges // 8)
    #: Exponent of the hub skew: endpoints are drawn as
    #: ``int(n_nodes * u**skew)`` so small ids are hot hubs.
    skew: float = 2.0
    seed: int = 2017

    @property
    def node_count(self) -> int:
        return self.n_nodes if self.n_nodes > 0 else max(16, self.n_edges // 8)


EDGE_SCHEMA = TableSchema.of(
    ("src", SqlType.INTEGER),
    ("dst", SqlType.INTEGER),
    ("weight", SqlType.INTEGER),
)


def generate_edges(config: Optional[CyclicConfig] = None) -> List[Tuple[int, int, int]]:
    """Distinct (src, dst, weight) edges; no self-loops."""
    config = config if config is not None else CyclicConfig()
    rng = random.Random(config.seed)
    n_nodes = config.node_count
    seen = set()
    rows: List[Tuple[int, int, int]] = []
    while len(rows) < config.n_edges:
        src = int(n_nodes * rng.random() ** config.skew)
        dst = int(n_nodes * rng.random() ** config.skew)
        if src == dst or (src, dst) in seen:
            continue
        seen.add((src, dst))
        rows.append((src, dst, rng.randrange(1, 100)))
    return rows


def load_edges(
    db: Database,
    config: Optional[CyclicConfig] = None,
    table_name: str = "edge",
    with_indexes: bool = True,
) -> None:
    """Create and populate the edge table.

    The sorted (src, dst) index is the one the trie join walks for
    free (``sorted_entries`` *is* the trie); the hash indexes serve
    the pairwise baseline's index nested-loop probes so the two sides
    of the benchmark each get their natural access path.
    """
    config = config if config is not None else CyclicConfig()
    table = db.create_table(table_name, EDGE_SCHEMA, primary_key=("src", "dst"))
    table.insert_many(generate_edges(config))
    if with_indexes:
        table.create_index(f"{table_name}_src_dst", ["src", "dst"], kind="sorted")
        table.create_index(f"{table_name}_src", ["src"], kind="hash")
        table.create_index(f"{table_name}_dst", ["dst"], kind="hash")


def make_cyclic_db(
    config: Optional[CyclicConfig] = None, with_indexes: bool = True
) -> Database:
    """A fresh database holding only the edge table."""
    config = config if config is not None else CyclicConfig()
    db = Database()
    load_edges(db, config, with_indexes=with_indexes)
    return db


def triangle_query(table: str = "edge") -> str:
    """Directed triangles: the canonical cyclic query (GYO-irreducible)."""
    return (
        "SELECT e1.src, e2.src, e3.src\n"
        f"FROM {table} e1, {table} e2, {table} e3\n"
        "WHERE e1.dst = e2.src AND e2.dst = e3.src AND e3.dst = e1.src"
    )


def square_query(table: str = "edge") -> str:
    """Directed 4-cycles.

    Unlike the triangle (whose trie levels all interleave), the square
    has a variable whose relations' key prefix is a *proper subset* of
    the earlier levels, so the trie join's subtree cache (Kalinsky,
    Kimelfeld, Sagiv 2016) gets hits here.
    """
    return (
        "SELECT e1.src, e2.src, e3.src, e4.src\n"
        f"FROM {table} e1, {table} e2, {table} e3, {table} e4\n"
        "WHERE e1.dst = e2.src AND e2.dst = e3.src\n"
        "  AND e3.dst = e4.src AND e4.dst = e1.src"
    )


def triangle_hub_query(min_count: int = 2, table: str = "edge") -> str:
    """Iceberg variant: vertices anchoring at least ``min_count`` triangles."""
    return (
        "SELECT e1.src, COUNT(*)\n"
        f"FROM {table} e1, {table} e2, {table} e3\n"
        "WHERE e1.dst = e2.src AND e2.dst = e3.src AND e3.dst = e1.src\n"
        "GROUP BY e1.src\n"
        f"HAVING COUNT(*) >= {min_count}"
    )
