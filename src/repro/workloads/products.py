"""Product catalog workload (Listing 3 / Example 1).

A key-value organized Product table: each product contributes one row
per attribute, ``id → category`` holds, and values are drawn so that a
controllable fraction of products is heavily dominated within its
category (the "unexciting products" the query hunts for).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple, Optional

from repro.storage.catalog import Database
from repro.storage.schema import TableSchema
from repro.storage.types import SqlType

PRODUCT_SCHEMA = TableSchema.of(
    ("id", SqlType.INTEGER),
    ("category", SqlType.TEXT),
    ("attr", SqlType.TEXT),
    ("val", SqlType.FLOAT),
)

DEFAULT_ATTRIBUTES = ("units_sold", "rating", "margin")


@dataclass(frozen=True)
class ProductConfig:
    n_products: int = 500
    n_categories: int = 6
    attributes: Tuple[str, ...] = DEFAULT_ATTRIBUTES
    laggard_fraction: float = 0.3  # products drawn from a dominated band
    seed: int = 99


def generate_products(
    config: Optional[ProductConfig] = None,
) -> List[Tuple[int, str, str, float]]:
    """Rows of (id, category, attr, val)."""
    config = config if config is not None else ProductConfig()
    rng = random.Random(config.seed)
    rows: List[Tuple[int, str, str, float]] = []
    for product_id in range(config.n_products):
        category = f"cat{rng.randrange(config.n_categories)}"
        laggard = rng.random() < config.laggard_fraction
        for attribute in config.attributes:
            if laggard:
                value = rng.uniform(0, 30)  # dominated band
            else:
                value = rng.uniform(20, 100)
            rows.append((product_id, category, attribute, round(value, 2)))
    return rows


def load_products(
    db: Database,
    config: Optional[ProductConfig] = None,
    table_name: str = "product",
    with_indexes: bool = True,
) -> None:
    config = config if config is not None else ProductConfig()
    table = db.create_table(table_name, PRODUCT_SCHEMA, primary_key=("id", "attr"))
    db.declare_fd(table_name, ["id"], ["category"])
    db.declare_domain(table_name, "val", lower=0)
    table.insert_many(generate_products(config))
    if with_indexes:
        table.create_index(f"{table_name}_cat_attr", ["category", "attr"], kind="hash")
        table.create_index(f"{table_name}_id", ["id"], kind="hash")
        table.create_index(f"{table_name}_val", ["val"], kind="sorted")


def make_product_db(config: Optional[ProductConfig] = None) -> Database:
    config = config if config is not None else ProductConfig()
    db = Database()
    load_products(db, config)
    return db
