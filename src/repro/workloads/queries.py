"""The paper's query templates, Section 8's Q1-Q8, and friends.

Templates are plain SQL-text builders over the workload schemas
(:mod:`repro.workloads.baseball` etc.), so every system under
comparison — baseline engine configs and Smart-Iceberg — consumes the
identical statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


def skyband_query(
    attr_a: str = "b_h",
    attr_b: str = "b_hr",
    k: int = 50,
    table: str = "batting",
    strict_form: str = "weak",
) -> str:
    """k-skyband over seasonal records (Listing 2 cast to baseball).

    Objects are seasonal performance records (keyed by playerid, year,
    round); a record is in the k-skyband if at most ``k`` others weakly
    dominate it on (``attr_a``, ``attr_b``).  ``strict_form`` picks the
    dominance flavour: ``"weak"`` (>= with at least one >) as in
    Listing 2, or ``"strong"`` (both strictly greater).
    """
    if strict_form == "weak":
        condition = (
            f"L.{attr_a} <= R.{attr_a} AND L.{attr_b} <= R.{attr_b} "
            f"AND (L.{attr_a} < R.{attr_a} OR L.{attr_b} < R.{attr_b})"
        )
    elif strict_form == "strong":
        condition = f"L.{attr_a} < R.{attr_a} AND L.{attr_b} < R.{attr_b}"
    else:
        raise ValueError(f"unknown strict_form {strict_form!r}")
    return (
        "SELECT L.playerid, L.year, L.round, COUNT(*)\n"
        f"FROM {table} L, {table} R\n"
        f"WHERE {condition}\n"
        "GROUP BY L.playerid, L.year, L.round\n"
        f"HAVING COUNT(*) <= {k}"
    )


def pairs_query(
    c: int = 3,
    k: int = 20,
    agg: str = "AVG",
    table: str = "batting",
    attr_a: str = "b_h",
    attr_b: str = "b_hr",
) -> str:
    """The "pairs" query (Listing 4) over the batting table.

    ``c`` is the minimum seasons-together threshold (WITH block's
    HAVING), ``k`` the skyband maximum (main HAVING), and ``agg`` the
    statistic aggregator (AVG or SUM).
    """
    agg = agg.upper()
    if agg not in ("AVG", "SUM"):
        raise ValueError(f"agg must be AVG or SUM, got {agg!r}")
    return (
        "WITH pair AS (\n"
        "  SELECT s1.playerid AS pid1, s2.playerid AS pid2,\n"
        f"         {agg}(s1.{attr_a}) AS hits1, {agg}(s1.{attr_b}) AS hruns1,\n"
        f"         {agg}(s2.{attr_a}) AS hits2, {agg}(s2.{attr_b}) AS hruns2\n"
        f"  FROM {table} s1, {table} s2\n"
        "  WHERE s1.teamid = s2.teamid AND s1.year = s2.year\n"
        "    AND s1.round = s2.round AND s1.playerid < s2.playerid\n"
        "  GROUP BY s1.playerid, s2.playerid\n"
        f"  HAVING COUNT(*) >= {c})\n"
        "SELECT L.pid1, L.pid2, COUNT(*)\n"
        "FROM pair L, pair R\n"
        "WHERE R.hits1 >= L.hits1 AND R.hruns1 >= L.hruns1\n"
        "  AND R.hits2 >= L.hits2 AND R.hruns2 >= L.hruns2\n"
        "  AND (R.hits1 > L.hits1 OR R.hruns1 > L.hruns1\n"
        "    OR R.hits2 > L.hits2 OR R.hruns2 > L.hruns2)\n"
        "GROUP BY L.pid1, L.pid2\n"
        f"HAVING COUNT(*) <= {k}"
    )


def complex_query(threshold: int = 10, table: str = "perf") -> str:
    """The "unexciting products" query (Listing 3) over unpivoted stats."""
    return (
        "SELECT S1.id, S1.attr, S2.attr, COUNT(*)\n"
        f"FROM {table} S1, {table} S2, {table} T1, {table} T2\n"
        "WHERE S1.id = S2.id AND T1.id = T2.id\n"
        "  AND S1.category = T1.category\n"
        "  AND T1.attr = S1.attr AND T2.attr = S2.attr\n"
        "  AND T1.val > S1.val AND T2.val > S2.val\n"
        "GROUP BY S1.id, S1.attr, S2.attr\n"
        f"HAVING COUNT(*) >= {threshold}"
    )


def market_basket_query(support: int = 20, table: str = "basket") -> str:
    """Frequent item pairs (Listing 1)."""
    return (
        "SELECT i1.item, i2.item, COUNT(*)\n"
        f"FROM {table} i1, {table} i2\n"
        "WHERE i1.bid = i2.bid AND i1.item < i2.item\n"
        "GROUP BY i1.item, i2.item\n"
        f"HAVING COUNT(*) >= {support}"
    )


def discount_query(threshold: int = 25) -> str:
    """Example 7: discount rates applied to items in many baskets."""
    return (
        "SELECT item, rate\n"
        "FROM dbasket L, discount R\n"
        "WHERE L.did = R.did\n"
        "GROUP BY item, rate\n"
        f"HAVING COUNT(DISTINCT bid) >= {threshold}"
    )


def player_skyband_query(
    attr_a: str = "b_h", attr_b: str = "b_hr", k: int = 20, table: str = "batting"
) -> str:
    """Q8: average stats per player first, then a simple-condition skyband."""
    return (
        "WITH avgs AS (\n"
        f"  SELECT playerid, AVG({attr_a}) AS x, AVG({attr_b}) AS y\n"
        f"  FROM {table}\n"
        "  GROUP BY playerid)\n"
        "SELECT L.playerid, COUNT(*)\n"
        "FROM avgs L, avgs R\n"
        "WHERE L.x < R.x AND L.y < R.y\n"
        "GROUP BY L.playerid\n"
        f"HAVING COUNT(*) <= {k}"
    )


@dataclass(frozen=True)
class PaperQuery:
    """One of the eight queries of Figure 1."""

    name: str
    sql: str
    template: str  # 'skyband' | 'pairs' | 'complex'
    apriori_applies: bool
    dataset: str  # 'batting' | 'perf'


def figure1_queries(
    skyband_k: Tuple[int, int, int] = (50, 100, 200),
    pairs_params: Tuple[Tuple[int, int, str], ...] = (
        (3, 20, "AVG"),
        (3, 50, "AVG"),
        (5, 20, "SUM"),
        (5, 50, "SUM"),
    ),
    q8_k: int = 20,
) -> Dict[str, PaperQuery]:
    """The Q1-Q8 suite of Section 8.1.

    Q1-Q3: seasonal skybands over different attribute pairs/thresholds;
    Q4-Q7: pairs queries with varying (c, k) and SUM/AVG;
    Q8:    per-player averaged skyband with the simpler join condition.
    The paper notes generalized a-priori does not apply to Q1-Q3, Q8.
    """
    queries: Dict[str, PaperQuery] = {}
    attr_pairs = (("b_h", "b_hr"), ("b_hr", "b_sb"), ("b_h", "b_rbi"))
    for index, (k, (attr_a, attr_b)) in enumerate(zip(skyband_k, attr_pairs), 1):
        queries[f"Q{index}"] = PaperQuery(
            name=f"Q{index}",
            sql=skyband_query(attr_a, attr_b, k),
            template="skyband",
            apriori_applies=False,
            dataset="batting",
        )
    for index, (c, k, agg) in enumerate(pairs_params, 4):
        queries[f"Q{index}"] = PaperQuery(
            name=f"Q{index}",
            sql=pairs_query(c=c, k=k, agg=agg),
            template="pairs",
            apriori_applies=True,
            dataset="batting",
        )
    queries["Q8"] = PaperQuery(
        name="Q8",
        sql=player_skyband_query(k=q8_k),
        template="skyband",
        apriori_applies=False,
        dataset="batting",
    )
    return queries
