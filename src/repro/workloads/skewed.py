"""Skewed-selectivity workload for the estimate→actual feedback loop.

Uniform-assumption estimators are at their worst on heavy-hitter
value distributions: without statistics, an equality predicate on a
column is charged ``1/ndv`` selectivity, but when one value carries
most of the mass the estimate is off by orders of magnitude — and the
mis-estimate cascades into join ordering (the "small" filtered side
gets picked as the driving relation when it is actually the large
one).  This module builds exactly that trap: an ``events`` fact table
whose ``kind`` column has one dominant value, joined to a small
``users`` dimension.

Run the query once under ``feedback="observe"`` and the harvested
(fingerprint, est, actual) observations let a ``feedback="apply"``
re-plan correct the estimate, flip the join order, and collapse the
q-error — the scenario the feedback tests and ``BENCH_5`` record.

Everything is deterministic given ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.storage.catalog import Database
from repro.storage.schema import TableSchema
from repro.storage.types import SqlType


@dataclass(frozen=True)
class SkewedConfig:
    """Knobs for the skewed events/users generator."""

    n_events: int = 6_000
    n_users: int = 300
    n_regions: int = 10
    #: Number of distinct ``kind`` values; ``hot_kind`` is one of them.
    n_kinds: int = 8
    #: The heavy-hitter ``kind`` value and its share of all events.
    hot_kind: int = 7
    hot_fraction: float = 0.85
    seed: int = 2017


EVENTS_SCHEMA = TableSchema.of(
    ("ev_id", SqlType.INTEGER),
    ("kind", SqlType.INTEGER),
    ("user_id", SqlType.INTEGER),
)

USERS_SCHEMA = TableSchema.of(
    ("user_id", SqlType.INTEGER),
    ("region", SqlType.TEXT),
)


def make_skewed_db(config: Optional[SkewedConfig] = None) -> Database:
    """A fresh database holding the skewed events/users pair.

    Neither table is ANALYZEd — the point of the workload is that the
    planner starts from index/row-count fallbacks (or online sketches)
    and only the feedback loop can see the skew.
    """
    config = config if config is not None else SkewedConfig()
    rng = random.Random(config.seed)
    db = Database()
    users = db.create_table("users", USERS_SCHEMA, primary_key=("user_id",))
    for user_id in range(config.n_users):
        users.insert((user_id, f"region_{user_id % config.n_regions}"))
    # No index on events.user_id on purpose: with one, an index
    # nested-loop driving from ``users`` dominates regardless of the
    # events-side estimate, and the mis-estimate never changes a plan
    # decision.  Without it the "tiny" (mis-estimated) filtered events
    # side looks like the perfect probe side — until feedback corrects
    # it and the planner switches strategy.
    events = db.create_table("events", EVENTS_SCHEMA, primary_key=("ev_id",))
    cold_kinds = config.n_kinds - 1
    for ev_id in range(config.n_events):
        if rng.random() < config.hot_fraction:
            kind = config.hot_kind
        else:
            kind = rng.randrange(cold_kinds)
            if kind >= config.hot_kind:
                kind += 1
        events.insert((ev_id, kind, rng.randrange(config.n_users)))
    return db


def skewed_query(config: Optional[SkewedConfig] = None) -> str:
    """Regions ranked by hot-kind event volume (the feedback probe query).

    The ``e.kind = <hot>`` predicate is the trap: uniform estimation
    says a tiny filtered side, reality says ~``hot_fraction`` of the
    fact table survives.
    """
    config = config if config is not None else SkewedConfig()
    return (
        "SELECT u.region, COUNT(*) AS n\n"
        "FROM events e, users u\n"
        f"WHERE e.kind = {config.hot_kind} AND e.user_id = u.user_id\n"
        "GROUP BY u.region"
    )
