"""Fixture: a blocking call made while holding a lock (one finding).

Not collected by pytest; loaded via ``check_paths``.  Line numbers are
asserted exactly in ``test_concurrency.py``.
"""

import threading
import time


class Throttle:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.waits = 0  # guarded-by: self._lock

    # thread-entry
    def pause(self) -> None:
        with self._lock:
            self.waits += 1
            time.sleep(0.1)  # line 20: blocking under self._lock
