"""Fixture: a fully annotated, discipline-clean module (zero findings).

Not collected by pytest; loaded via ``check_paths``.
"""

import threading


class Ledger:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.balance = 0  # guarded-by: self._lock
        self.entries = 0  # guarded-by: self._lock
        self.label = "ledger"  # unguarded: immutable after construction

    # thread-entry
    def deposit(self, amount: int) -> None:
        with self._lock:
            self.balance += amount
            self.entries += 1

    # thread-entry
    def snapshot(self) -> tuple:
        with self._lock:
            return (self.balance, self.entries)

    def _apply(self, amount: int) -> None:  # requires-lock: self._lock
        self.balance += amount

    # thread-entry
    def adjust(self, amount: int) -> None:
        with self._lock:
            self._apply(amount)
