"""Fixture: two locks acquired in both orders (lock-order cycle).

Not collected by pytest; loaded via ``check_paths``.  Line numbers are
asserted exactly in ``test_concurrency.py``.
"""

import threading


class Transfer:
    def __init__(self) -> None:
        self._a = threading.Lock()
        self._b = threading.Lock()

    # thread-entry
    def forward(self) -> None:
        with self._a:
            with self._b:  # edge a -> b
                pass

    # thread-entry
    def backward(self) -> None:
        with self._b:
            with self._a:  # edge b -> a: closes the cycle
                pass
