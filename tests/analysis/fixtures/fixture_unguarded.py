"""Fixture: a guarded counter written without its lock (one finding).

Not collected by pytest (no ``test_`` prefix); loaded by the
concurrency-checker tests via ``check_paths`` and asserted against
exact rule ids and line numbers — renumber the assertions in
``test_concurrency.py`` if you edit this file.
"""

import threading


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0  # guarded-by: self._lock

    # thread-entry
    def increment(self) -> None:
        with self._lock:
            self.value += 1

    # thread-entry
    def reset(self) -> None:
        self.value = 0  # line 24: write without self._lock
