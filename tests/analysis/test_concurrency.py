"""Tests for the concurrency checker, its fixtures, and the lint CLI.

The fixture modules under ``tests/analysis/fixtures/`` are *inputs* to
the checker (not collected by pytest); every assertion here pins the
exact rule id, file, and line the checker must report for them, so a
regression in annotation parsing, held-lock dataflow, or cycle
detection fails loudly rather than silently widening or narrowing the
rule.
"""

import io
import os
import textwrap
from contextlib import redirect_stdout

import pytest

from repro.analysis import lint as lint_cli
from repro.analysis.concurrency import RULES, check_package, check_paths
from repro.analysis.lints import Severity

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(name):
    return os.path.join(FIXTURES, f"{name}.py")


def run_fixture(name):
    return check_paths([fixture(name)])


def one_finding(report):
    assert len(report.findings) == 1, [str(f) for f in report.findings]
    return report.findings[0]


class TestFixtureFindings:
    def test_unguarded_write_exact_location(self):
        finding = one_finding(run_fixture("fixture_unguarded"))
        assert finding.rule == "conc-unguarded-access"
        assert finding.severity is Severity.ERROR
        assert finding.path.endswith("fixture_unguarded.py")
        assert finding.line == 24
        assert "Counter.value" in finding.message
        assert "Counter._lock" in finding.message

    def test_guarded_write_inside_with_not_flagged(self):
        report = run_fixture("fixture_unguarded")
        # increment() holds the lock; only reset() (line 24) fires.
        assert [finding.line for finding in report.findings] == [24]

    def test_lock_order_cycle_detected_with_witnesses(self):
        report = run_fixture("fixture_cycle")
        finding = one_finding(report)
        assert finding.rule == "conc-lock-order-cycle"
        assert finding.severity is Severity.ERROR
        assert finding.path.endswith("fixture_cycle.py")
        # The cycle is reported at its first witnessed edge; the
        # message carries both witnesses with their lines.
        assert finding.line == 18
        assert "fixture_cycle.py:18" in finding.message
        assert "fixture_cycle.py:24" in finding.message
        assert "Transfer._a" in finding.message
        assert "Transfer._b" in finding.message

    def test_lock_order_graph_has_both_edges(self):
        report = run_fixture("fixture_cycle")
        assert sorted(report.lock_graph) == [
            ("fixture_cycle:Transfer._a", "fixture_cycle:Transfer._b"),
            ("fixture_cycle:Transfer._b", "fixture_cycle:Transfer._a"),
        ]

    def test_blocking_under_lock(self):
        finding = one_finding(run_fixture("fixture_blocking"))
        assert finding.rule == "conc-blocking-under-lock"
        assert finding.severity is Severity.ERROR
        assert finding.path.endswith("fixture_blocking.py")
        assert finding.line == 20
        assert "time.sleep" in finding.message
        assert "Throttle._lock" in finding.message

    def test_clean_fixture_is_clean(self):
        report = run_fixture("fixture_clean")
        assert report.findings == []
        assert report.ok(strict=True)
        # The module's lock and annotations were actually seen — the
        # zero-findings result is not an analysis no-op.
        assert "fixture_clean:Ledger._lock" in report.locks
        assert any("deposit" in root for root in report.roots)


class TestInlineModules:
    """Rules exercised on synthesized modules (tmp_path)."""

    def check_source(self, tmp_path, source, name="fixture_mod"):
        path = tmp_path / f"{name}.py"
        path.write_text(textwrap.dedent(source))
        return check_paths([str(path)])

    def test_acquire_without_release_in_finally(self, tmp_path):
        report = self.check_source(
            tmp_path,
            """
            import threading

            class Holder:
                def __init__(self) -> None:
                    self._lock = threading.Lock()

                # thread-entry
                def bad(self) -> None:
                    self._lock.acquire()
                    self._lock.release()
            """,
        )
        rules = [finding.rule for finding in report.findings]
        assert rules == ["conc-acquire-without-release"]
        assert report.findings[0].line == 10

    def test_acquire_with_finally_release_passes(self, tmp_path):
        report = self.check_source(
            tmp_path,
            """
            import threading

            class Holder:
                def __init__(self) -> None:
                    self._lock = threading.Lock()

                # thread-entry
                def good(self) -> None:
                    self._lock.acquire()
                    try:
                        pass
                    finally:
                        self._lock.release()
            """,
        )
        assert report.findings == []

    def test_unknown_lock_annotation(self, tmp_path):
        report = self.check_source(
            tmp_path,
            """
            import threading

            class Widget:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    self.count = 0  # guarded-by: self._mutex
            """,
        )
        finding = one_finding(report)
        assert finding.rule == "conc-unknown-lock"
        assert "self._mutex" in finding.message

    def test_requires_lock_callee_checked_against_caller(self, tmp_path):
        report = self.check_source(
            tmp_path,
            """
            import threading

            class Ledger:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    self.balance = 0  # guarded-by: self._lock

                def _apply(self) -> None:  # requires-lock: self._lock
                    self.balance += 1

                # thread-entry
                def unlocked_call(self) -> None:
                    self._apply()
            """,
        )
        assert report.findings, "calling a requires-lock method unlocked must fire"
        assert all(finding.severity is Severity.ERROR for finding in report.findings)

    def test_nested_def_does_not_inherit_held_locks(self, tmp_path):
        # A nested def is a deferred callback: the lock held at its
        # definition site is NOT held when it runs.  This shape is the
        # on_retry race the checker caught in serve/server.py.
        report = self.check_source(
            tmp_path,
            """
            import threading

            class Session:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    self.retries = 0  # guarded-by: self._lock

                # thread-entry
                def execute(self) -> None:
                    with self._lock:
                        def on_retry() -> None:
                            self.retries += 1
                        self.register(on_retry)

                def register(self, cb) -> None:
                    pass
            """,
        )
        rules = [finding.rule for finding in report.findings]
        assert "conc-unguarded-access" in rules


class TestSelfCheck:
    def test_repro_package_is_discipline_clean(self):
        """The acceptance bar: zero findings over src/repro itself."""
        report = check_package()
        assert report.findings == [], [str(f) for f in report.findings]
        assert report.ok(strict=True)

    def test_repro_lock_order_graph_is_acyclic_and_nonempty(self):
        report = check_package()
        assert report.lock_graph, "expected at least one witnessed order edge"
        # Acyclicity: Kahn's algorithm consumes every node.
        nodes = {node for edge in report.lock_graph for node in edge}
        indegree = {node: 0 for node in nodes}
        for _, acquired in report.lock_graph:
            indegree[acquired] += 1
        frontier = [node for node, degree in indegree.items() if degree == 0]
        seen = 0
        while frontier:
            node = frontier.pop()
            seen += 1
            for held, acquired in report.lock_graph:
                if held == node:
                    indegree[acquired] -= 1
                    if indegree[acquired] == 0:
                        frontier.append(acquired)
        assert seen == len(nodes), "lock-order graph has a cycle"

    def test_rule_catalogue_is_complete(self):
        assert set(RULES) == {
            "conc-unguarded-access",
            "conc-lock-order-cycle",
            "conc-blocking-under-lock",
            "conc-acquire-without-release",
            "conc-unknown-lock",
            "conc-unannotated-shared",
        }


class TestConcurrencyCli:
    def run_cli(self, argv):
        out = io.StringIO()
        with redirect_stdout(out):
            code = lint_cli.main(argv)
        return code, out.getvalue()

    def test_findings_exit_one_with_per_rule_counts(self):
        code, output = self.run_cli(
            ["--concurrency", fixture("fixture_unguarded")]
        )
        assert code == 1
        assert "conc-unguarded-access" in output
        assert "1 x conc-unguarded-access" in output
        assert "1 finding(s)" in output

    def test_clean_exit_zero(self):
        code, output = self.run_cli(["--concurrency", fixture("fixture_clean")])
        assert code == 0
        assert "0 finding(s)" in output

    def test_missing_file_exit_two(self):
        code, _ = self.run_cli(["--concurrency", "/no/such/fixture.py"])
        assert code == 2

    def test_no_targets_without_concurrency_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            lint_cli.main([])
        assert excinfo.value.code == 2

    def test_trace_conflicts_with_concurrency(self):
        with pytest.raises(SystemExit) as excinfo:
            lint_cli.main(["--concurrency", "--trace", "/tmp/x.json"])
        assert excinfo.value.code == 2

    def test_multiple_fixtures_aggregate(self):
        code, output = self.run_cli(
            [
                "--concurrency",
                fixture("fixture_unguarded"),
                fixture("fixture_blocking"),
            ]
        )
        assert code == 1
        assert "1 x conc-unguarded-access" in output
        assert "1 x conc-blocking-under-lock" in output
