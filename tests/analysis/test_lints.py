"""Tests for the lint rules and the ``repro.analysis.lint`` CLI."""

import io

import pytest

from repro.analysis import Severity, lint_query
from repro.analysis import lint as lint_cli
from repro.storage import Database
from repro.workloads import (
    BaseballConfig,
    discount_query,
    figure1_queries,
    make_batting_db,
)
from repro.workloads.basket import load_discount_schema


@pytest.fixture(scope="module")
def batting_db():
    return make_batting_db(BaseballConfig(n_rows=80, n_years=3, seed=7))


def rules_of(findings):
    return [finding.rule for finding in findings]


class TestUnsatisfiablePredicate:
    def test_contradictory_range_flagged(self, batting_db):
        sql = (
            "SELECT L.playerid, COUNT(*) FROM batting L, batting R "
            "WHERE L.year = R.year AND L.year < 1900 AND L.year > 2000 "
            "GROUP BY L.playerid HAVING COUNT(*) >= 2"
        )
        findings = lint_query(batting_db, sql)
        assert "unsatisfiable-predicate" in rules_of(findings)
        finding = next(
            f for f in findings if f.rule == "unsatisfiable-predicate"
        )
        assert finding.severity is Severity.WARNING
        assert "no rows" in finding.message

    def test_satisfiable_range_clean(self, batting_db):
        sql = (
            "SELECT L.playerid, COUNT(*) FROM batting L, batting R "
            "WHERE L.year = R.year AND L.year > 1900 AND L.year < 2100 "
            "GROUP BY L.playerid HAVING COUNT(*) >= 2"
        )
        assert "unsatisfiable-predicate" not in rules_of(
            lint_query(batting_db, sql)
        )


class TestImpliedPredicate:
    def test_transitive_redundancy_flagged(self, batting_db):
        sql = (
            "SELECT L.playerid, COUNT(*) FROM batting L, batting R "
            "WHERE L.year = R.year AND L.year > 2000 AND R.year > 2000 "
            "GROUP BY L.playerid HAVING COUNT(*) >= 2"
        )
        findings = [
            f
            for f in lint_query(batting_db, sql)
            if f.rule == "implied-predicate"
        ]
        assert findings, "redundant conjunct not reported"
        assert all(f.severity is Severity.INFO for f in findings)
        spans = " ".join(f.span for f in findings)
        assert "year > 2000" in spans


class TestCartesianProduct:
    def test_disconnected_join_graph_flagged(self, batting_db):
        sql = (
            "SELECT L.playerid, R.teamid FROM batting L, batting R "
            "WHERE L.year > 2000 AND R.year > 2000"
        )
        findings = lint_query(batting_db, sql)
        finding = next(
            f for f in findings if f.rule == "cartesian-product"
        )
        assert finding.severity is Severity.WARNING
        assert "{l}" in finding.message and "{r}" in finding.message

    def test_connected_graph_clean(self, batting_db):
        sql = (
            "SELECT L.playerid, R.teamid FROM batting L, batting R "
            "WHERE L.year = R.year"
        )
        assert "cartesian-product" not in rules_of(
            lint_query(batting_db, sql)
        )


class TestUnusedRelation:
    def test_never_referenced_relation_flagged(self, batting_db):
        sql = "SELECT L.playerid FROM batting L, batting R WHERE L.year > 2000"
        findings = lint_query(batting_db, sql)
        finding = next(f for f in findings if f.rule == "unused-relation")
        assert "'r'" in finding.message

    def test_join_participation_counts_as_use(self, batting_db):
        sql = "SELECT L.playerid FROM batting L, batting R WHERE L.year = R.year"
        assert "unused-relation" not in rules_of(lint_query(batting_db, sql))


class TestNonMonotoneHaving:
    def test_avg_having_flagged(self, batting_db):
        sql = (
            "SELECT L.playerid, COUNT(*) FROM batting L, batting R "
            "WHERE L.b_h <= R.b_h GROUP BY L.playerid "
            "HAVING AVG(L.b_hr) > 5"
        )
        findings = lint_query(batting_db, sql)
        finding = next(
            f for f in findings if f.rule == "non-monotone-having"
        )
        assert finding.severity is Severity.WARNING
        # The message explains the consequence in the paper's terms.
        assert "Theorem" in finding.message

    def test_monotone_count_having_clean(self, batting_db):
        sql = (
            "SELECT L.playerid, COUNT(*) FROM batting L, batting R "
            "WHERE L.b_h <= R.b_h GROUP BY L.playerid "
            "HAVING COUNT(*) >= 2"
        )
        assert "non-monotone-having" not in rules_of(
            lint_query(batting_db, sql)
        )


class TestNonAlgebraicAggregate:
    def test_count_distinct_flagged(self):
        db = Database()
        load_discount_schema(db, n_baskets=40, n_items=12, n_discounts=4, seed=7)
        findings = lint_query(db, discount_query())
        finding = next(
            f for f in findings if f.rule == "non-algebraic-aggregate"
        )
        assert finding.severity is Severity.INFO


class TestCleanWorkloads:
    @pytest.mark.parametrize("name", [f"Q{i}" for i in range(1, 9)])
    def test_paper_queries_lint_clean(self, batting_db, name):
        assert lint_query(batting_db, figure1_queries()[name].sql) == []


class TestFindingPresentation:
    def test_str_shows_severity_rule_and_span(self, batting_db):
        sql = "SELECT L.playerid FROM batting L, batting R WHERE L.year > 2000"
        finding = next(
            f
            for f in lint_query(batting_db, sql)
            if f.rule == "unused-relation"
        )
        text = str(finding)
        assert text.startswith("warning[unused-relation]")
        assert "batting r" in text

    def test_findings_sorted_by_severity(self, batting_db):
        sql = (
            "SELECT L.playerid, COUNT(*) FROM batting L, batting R "
            "WHERE L.year = R.year AND L.year > 2000 AND R.year > 2000 "
            "AND L.year < 1900 "
            "GROUP BY L.playerid HAVING COUNT(*) >= 2"
        )
        findings = lint_query(batting_db, sql)
        severities = [int(f.severity) for f in findings]
        assert severities == sorted(severities, reverse=True)


class TestCli:
    def test_all_targets_exit_zero(self):
        assert lint_cli.main(["all"]) == 0

    def test_named_targets_cover_every_workload(self):
        targets = lint_cli.named_targets()
        for name in [f"Q{i}" for i in range(1, 9)]:
            assert name in targets
        assert {"complex", "market_basket", "discount"} <= set(targets)

    def test_analysis_error_exits_nonzero(self):
        code = lint_cli.main(
            ["SELECT year FROM batting L, batting R "
             "WHERE L.playerid = R.playerid"]
        )
        assert code == 1

    def test_warnings_exit_zero_unless_strict(self):
        sql = (
            "SELECT L.playerid FROM batting L, batting R WHERE L.year > 2000"
        )
        assert lint_cli.main([sql]) == 0
        assert lint_cli.main(["--strict", sql]) == 1

    def test_run_target_reports_findings(self):
        db = make_batting_db(BaseballConfig(n_rows=50, n_years=3, seed=7))
        out = io.StringIO()
        ok = lint_cli.run_target(
            "bad",
            db,
            "SELECT L.playerid FROM batting L, batting R WHERE L.year > 2000",
            strict=False,
            out=out,
        )
        assert ok
        text = out.getvalue()
        assert "unused-relation" in text and "cartesian-product" in text

    def test_run_target_clean_query_prints_ok(self):
        db = make_batting_db(BaseballConfig(n_rows=50, n_years=3, seed=7))
        out = io.StringIO()
        ok = lint_cli.run_target(
            "Q1", db, figure1_queries()["Q1"].sql, strict=True, out=out
        )
        assert ok
        assert "ok" in out.getvalue()
