"""Tests for the semantic analyzer (name resolution + typechecking)."""

import pytest

from repro import SmartIceberg
from repro.analysis import analyze_query, resolve_query
from repro.engine import EngineConfig
from repro.errors import (
    AmbiguousColumnError,
    AnalysisError,
    ReproError,
    TypeMismatchError,
    UnknownColumnError,
    UnknownTableError,
)
from repro.storage import SqlType
from repro.workloads import (
    BaseballConfig,
    BasketConfig,
    figure1_queries,
    make_batting_db,
)
from repro.workloads.basket import make_basket_db


@pytest.fixture(scope="module")
def batting_db():
    return make_batting_db(BaseballConfig(n_rows=120, n_years=3, seed=7))


@pytest.fixture(scope="module")
def typed_db():
    """Basket has a TEXT column, so type mismatches are expressible."""
    return make_basket_db(BasketConfig(n_baskets=30))


class TestNameResolution:
    def test_unknown_table(self, batting_db):
        with pytest.raises(UnknownTableError):
            analyze_query(batting_db, "SELECT x FROM nosuch")

    def test_unknown_column(self, batting_db):
        with pytest.raises(UnknownColumnError) as excinfo:
            analyze_query(batting_db, "SELECT b.nosuch FROM batting b")
        assert "nosuch" in str(excinfo.value)

    def test_unqualified_unknown_column(self, batting_db):
        with pytest.raises(UnknownColumnError):
            analyze_query(batting_db, "SELECT nosuch FROM batting b")

    def test_ambiguous_column(self, batting_db):
        sql = (
            "SELECT year FROM batting L, batting R "
            "WHERE L.playerid = R.playerid"
        )
        with pytest.raises(AmbiguousColumnError) as excinfo:
            analyze_query(batting_db, sql)
        message = str(excinfo.value)
        assert "l" in message and "r" in message

    def test_duplicate_alias_rejected(self, batting_db):
        with pytest.raises(AnalysisError):
            analyze_query(
                batting_db,
                "SELECT b.playerid FROM batting b, batting b",
            )

    def test_resolve_only_skips_type_checks(self, typed_db):
        # Names are fine, types are not: resolve_query accepts what
        # analyze_query rejects.
        sql = "SELECT b.item + 1 FROM basket b"
        resolve_query(typed_db, sql)
        with pytest.raises(TypeMismatchError):
            analyze_query(typed_db, sql)

    def test_resolve_still_rejects_bad_names(self, typed_db):
        with pytest.raises(UnknownColumnError):
            resolve_query(typed_db, "SELECT b.nosuch FROM basket b")

    def test_typed_errors_are_repro_errors(self):
        for cls in (
            UnknownTableError,
            UnknownColumnError,
            AmbiguousColumnError,
            TypeMismatchError,
        ):
            assert issubclass(cls, AnalysisError)
            assert issubclass(cls, ReproError)


class TestTypeChecking:
    def test_comparison_across_types(self, typed_db):
        with pytest.raises(TypeMismatchError):
            analyze_query(
                typed_db, "SELECT b.bid FROM basket b WHERE b.item > b.bid"
            )

    def test_arithmetic_on_text(self, typed_db):
        with pytest.raises(TypeMismatchError):
            analyze_query(typed_db, "SELECT b.item + 1 FROM basket b")

    def test_text_function_on_integer(self, typed_db):
        with pytest.raises(TypeMismatchError):
            analyze_query(typed_db, "SELECT UPPER(b.bid) FROM basket b")

    def test_numeric_aggregate_on_text(self, typed_db):
        with pytest.raises(TypeMismatchError):
            analyze_query(typed_db, "SELECT SUM(b.item) FROM basket b")

    def test_aggregate_in_where_rejected(self, batting_db):
        with pytest.raises(AnalysisError):
            analyze_query(
                batting_db,
                "SELECT b.playerid FROM batting b WHERE COUNT(*) > 2",
            )

    def test_output_types_inferred(self, batting_db):
        info = analyze_query(
            batting_db,
            "SELECT b.playerid, b.b_h + b.b_hr AS power, COUNT(*) "
            "FROM batting b GROUP BY b.playerid, b.b_h, b.b_hr",
        )
        names = [column.name for column in info.output]
        assert names == ["playerid", "power", "count"]
        types = {column.name: column.type for column in info.output}
        assert types["playerid"] is SqlType.INTEGER
        assert types["power"] is SqlType.INTEGER
        assert types["count"] is SqlType.INTEGER


class TestAcceptedQueries:
    @pytest.mark.parametrize("name", [f"Q{i}" for i in range(1, 9)])
    def test_paper_queries_analyze_cleanly(self, batting_db, name):
        info = analyze_query(batting_db, figure1_queries()[name].sql)
        assert info.output, f"{name} produced no output columns"

    def test_derived_output_name_usable_in_order_by(self, batting_db):
        # The planner resolves ORDER BY against output-layout names, so
        # the analyzer must accept the derived name of COUNT(*).
        analyze_query(
            batting_db,
            "SELECT L.playerid, COUNT(*) FROM batting L, batting R "
            "WHERE L.b_h <= R.b_h GROUP BY L.playerid "
            "HAVING COUNT(*) >= 2 ORDER BY count DESC",
        )

    def test_cte_and_derived_table_scopes(self, batting_db):
        analyze_query(
            batting_db,
            "WITH best (pid, hits) AS "
            "(SELECT b.playerid, MAX(b.b_h) FROM batting b "
            "GROUP BY b.playerid) "
            "SELECT t.pid FROM best t WHERE t.hits > 10",
        )

    def test_uncorrelated_subquery_analyzed(self, batting_db):
        analyze_query(
            batting_db,
            "SELECT b.playerid FROM batting b WHERE b.year IN "
            "(SELECT c.year FROM batting c WHERE c.b_hr > 10)",
        )


class TestSmartIcebergBoundary:
    """Satellite (a): typed analysis errors at the system boundary."""

    def test_off_mode_still_raises_typed_error(self, batting_db):
        system = SmartIceberg(batting_db, analyze="off")
        with pytest.raises(UnknownColumnError):
            system.execute("SELECT b.nosuch FROM batting b")

    def test_unknown_table_at_boundary(self, batting_db):
        with pytest.raises(UnknownTableError):
            SmartIceberg(batting_db).execute("SELECT x FROM nosuch")

    def test_strict_mode_rejects_type_mismatch(self, typed_db):
        system = SmartIceberg(typed_db, analyze="strict")
        with pytest.raises(TypeMismatchError):
            system.execute("SELECT b.item + 1 FROM basket b")

    def test_warn_mode_records_note_and_runs(self, typed_db):
        system = SmartIceberg(typed_db, analyze="warn")
        optimized = system.optimize("SELECT b.item + 1 FROM basket b")
        assert any(
            note.startswith("analysis:") for note in optimized.report.notes
        )

    def test_invalid_analyze_value_rejected(self, batting_db):
        with pytest.raises(ValueError):
            SmartIceberg(batting_db, analyze="bogus")
        with pytest.raises(ValueError):
            EngineConfig(analyze="bogus")

    def test_analyze_seconds_recorded(self, batting_db):
        optimized = SmartIceberg(batting_db, analyze="strict").optimize(
            figure1_queries()["Q1"].sql
        )
        assert optimized.report.analyze_seconds > 0
