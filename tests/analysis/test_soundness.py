"""Randomized soundness checks for derived subsumption predicates.

Section 5.2 / Appendix B: the derived p⪰ must satisfy

    p⪰(w, w')  ⇒  ∀r: Θ(w', r) ⇒ Θ(w, r)

i.e. a subsuming new binding joins every R-tuple the cached binding
joins.  Each derived predicate gets >= 1000 seeded trials; a
deliberately wrong predicate must produce a counterexample.
"""

import pytest

from repro import SmartIceberg
from repro.analysis import check_subsumption_soundness
from repro.core.iceberg import IcebergBlock
from repro.core.subsumption import SubsumptionPredicate, derive_subsumption
from repro.logic import formula as fm
from repro.sql.parser import parse
from repro.workloads import (
    BaseballConfig,
    figure1_queries,
    make_batting_db,
    skyband_query,
)


TRIALS = 1000

BATTING = make_batting_db(BaseballConfig(n_rows=120, n_years=3, seed=7))

SKYBAND = (
    "SELECT L.id, COUNT(*) FROM object L, object R "
    "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
    "GROUP BY L.id HAVING COUNT(*) <= 5"
)


def partition_view(db, sql, left=("l",)):
    block = IcebergBlock(parse(sql).body, db)
    return block.partition(list(left))


def assert_sound(view, predicate=None):
    counterexample = check_subsumption_soundness(
        list(view.theta),
        sorted(view.j_left),
        sorted(view.j_right),
        predicate=predicate,
        trials=TRIALS,
    )
    assert counterexample is None, counterexample


class TestDerivedPredicates:
    def test_weak_dominance_skyband(self, object_db):
        assert_sound(partition_view(object_db, SKYBAND))

    def test_strong_dominance_skyband(self):
        sql = skyband_query("b_h", "b_hr", 25, strict_form="strong")
        assert_sound(partition_view(BATTING, sql))

    def test_equality_plus_strict_inequality(self, basket_db):
        sql = (
            "SELECT i1.item, COUNT(*) FROM basket i1, basket i2 "
            "WHERE i1.bid = i2.bid AND i1.item < i2.item "
            "GROUP BY i1.item HAVING COUNT(*) >= 2"
        )
        assert_sound(partition_view(basket_db, sql, left=("i1",)))

    def test_monotone_variant(self):
        sql = (
            "SELECT L.playerid, COUNT(*) FROM batting L, batting R "
            "WHERE L.b_h <= R.b_h AND L.b_hr <= R.b_hr "
            "GROUP BY L.playerid HAVING COUNT(*) >= 10"
        )
        assert_sound(partition_view(BATTING, sql))


class TestOptimizerInstalledPredicate:
    def test_q1_pruning_predicate_sound(self):
        optimized = SmartIceberg(BATTING).optimize(
            figure1_queries()["Q1"].sql
        )
        nljp = optimized.nljp
        assert nljp is not None
        assert nljp.pruning is not None and nljp.pruning.predicate is not None
        view = nljp.view
        assert_sound(view, predicate=nljp.pruning.predicate)


class TestWrongPredicatesCaught:
    def test_always_true_predicate_has_counterexample(self, object_db):
        # "Every binding subsumes every other" is the worst possible
        # bug: pruning would drop arbitrary groups.
        view = partition_view(object_db, SKYBAND)
        bogus = SubsumptionPredicate(fm.TRUE, tuple(sorted(view.j_left)))
        counterexample = check_subsumption_soundness(
            list(view.theta),
            sorted(view.j_left),
            sorted(view.j_right),
            predicate=bogus,
            trials=TRIALS,
        )
        assert counterexample is not None
        assert {"trial", "attributes", "w", "w_prime", "r"} <= set(
            counterexample
        )

    def test_reversed_predicate_has_counterexample(self, object_db):
        # The correct p⪰ for weak dominance points the other way:
        # swapping w and w' claims dominated bindings subsume their
        # dominators.
        view = partition_view(object_db, SKYBAND)
        derived = derive_subsumption(
            list(view.theta), sorted(view.j_left), sorted(view.j_right)
        )

        class Reversed:
            attributes = derived.attributes

            def holds(self, w, w_prime):
                return derived.holds(w_prime, w)

        counterexample = check_subsumption_soundness(
            list(view.theta),
            sorted(view.j_left),
            sorted(view.j_right),
            predicate=Reversed(),
            trials=TRIALS,
        )
        assert counterexample is not None


class TestTrialAccounting:
    def test_zero_trials_vacuously_sound(self, object_db):
        view = partition_view(object_db, SKYBAND)
        bogus = SubsumptionPredicate(fm.TRUE, tuple(sorted(view.j_left)))
        assert (
            check_subsumption_soundness(
                list(view.theta),
                sorted(view.j_left),
                sorted(view.j_right),
                predicate=bogus,
                trials=0,
            )
            is None
        )

    def test_deterministic_for_fixed_seed(self, object_db):
        view = partition_view(object_db, SKYBAND)
        bogus = SubsumptionPredicate(fm.TRUE, tuple(sorted(view.j_left)))

        def run():
            return check_subsumption_soundness(
                list(view.theta),
                sorted(view.j_left),
                sorted(view.j_right),
                predicate=bogus,
                trials=TRIALS,
                seed=11,
            )

        assert run() == run()

    def test_empty_theta_rejected(self):
        with pytest.raises(Exception):
            check_subsumption_soundness([], ["l.x"], ["r.x"], trials=10)
