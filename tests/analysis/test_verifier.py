"""Tests for the plan verifier and the machine-readable plan dump.

The centerpiece is the dropped-conjunct mutation: reverting the
planner's duplicate-column dedup (the PR-3 bug class) must turn into a
hard verification error, under every join-order policy.
"""

import dataclasses
import json
from itertools import combinations

import pytest

from repro import SmartIceberg
from repro.analysis import verify_or_raise, verify_planned
from repro.engine import EngineConfig
from repro.engine import planner as planner_module
from repro.engine.planner import plan_query
from repro.errors import PlanVerificationError
from repro.sql.parser import parse
from repro.workloads import BaseballConfig, figure1_queries, make_batting_db


DB = make_batting_db(BaseballConfig(n_rows=300, seed=21))

JOIN_ORDERS = ("syntactic", "greedy", "dp")
MODES = ("row", "batch")


def smart_config(join_order):
    return dataclasses.replace(EngineConfig.smart(), join_order=join_order)


class TestStrictAcceptance:
    """``analyze="strict"`` on the paper workloads: zero violations,
    bit-identical results versus ``analyze="off"``."""

    @pytest.mark.parametrize("name", [f"Q{i}" for i in range(1, 9)])
    def test_strict_equals_off_across_planners_and_modes(self, name):
        sql = figure1_queries()[name].sql
        reference = None
        for join_order in JOIN_ORDERS:
            for mode in MODES:
                rows = {}
                for analyze in ("off", "strict"):
                    system = SmartIceberg(
                        DB,
                        config=smart_config(join_order),
                        execution_mode=mode,
                        analyze=analyze,
                    )
                    # Strict mode raises on any analyzer or verifier
                    # violation, so reaching rows at all is the "zero
                    # violations" half of the acceptance criterion.
                    rows[analyze] = system.execute(sql).sorted_rows()
                assert rows["strict"] == rows["off"], (
                    f"{name} [{join_order}/{mode}] differs across "
                    "analyze modes"
                )
                if reference is None:
                    reference = rows["strict"]
                assert rows["strict"] == reference, (
                    f"{name} [{join_order}/{mode}] differs across plans"
                )

    @pytest.mark.parametrize("join_order", JOIN_ORDERS)
    @pytest.mark.parametrize("name", [f"Q{i}" for i in range(1, 9)])
    def test_engine_plans_verify_clean(self, name, join_order):
        planned = plan_query(
            DB, parse(figure1_queries()[name].sql), smart_config(join_order)
        )
        assert verify_planned(planned) == []


# A 3-way self-join whose equi conjuncts target the same inner column
# twice (M.year = L.year AND M.year = R.year).  Post-dedup, only one
# can feed the hash-index probe key; the other must survive in the
# residual filter.
MUTATION_SQL = (
    "SELECT COUNT(*) FROM batting L, batting R, batting M "
    "WHERE L.teamid = R.teamid AND L.year = R.year AND L.round = R.round "
    "AND M.teamid = L.teamid AND M.year = L.year AND M.year = R.year "
    "AND M.round = L.round"
)


def _matching_hash_index_without_dedup(table, equi, config):
    """The pre-PR-3 buggy search: duplicate inner columns not deduped.

    ``find_hash_index`` compares column *sets*, so the duplicated
    column still matches an index, but only one of the duplicate
    conjuncts can feed the probe key — the other is silently dropped
    from both the key and the residual.
    """
    columns = [column for _, column, _ in equi]
    index = table.find_hash_index(columns)
    chosen = list(equi)
    if index is None and config.use_secondary_indexes:
        for size in range(len(equi) - 1, 0, -1):
            for subset in combinations(equi, size):
                index = table.find_hash_index([c for _, c, _ in subset])
                if index is not None:
                    chosen = list(subset)
                    break
            if index is not None:
                break
    if index is None:
        return None, []
    return index, chosen


class TestDroppedConjunctMutation:
    @pytest.mark.parametrize("join_order", JOIN_ORDERS)
    def test_correct_planner_verifies_clean(self, join_order):
        planned = plan_query(
            DB, parse(MUTATION_SQL), smart_config(join_order)
        )
        assert verify_planned(planned) == []

    @pytest.mark.parametrize("join_order", JOIN_ORDERS)
    def test_mutant_reported_as_dropped_predicate(self, join_order, monkeypatch):
        monkeypatch.setattr(
            planner_module,
            "_matching_hash_index",
            _matching_hash_index_without_dedup,
        )
        planned = plan_query(
            DB, parse(MUTATION_SQL), smart_config(join_order)
        )
        violations = verify_planned(planned)
        assert any("dropped predicate" in v for v in violations), violations
        with pytest.raises(PlanVerificationError) as excinfo:
            verify_or_raise(planned)
        assert excinfo.value.violations == violations

    def test_strict_mode_turns_mutation_into_hard_error(self, monkeypatch):
        monkeypatch.setattr(
            planner_module,
            "_matching_hash_index",
            _matching_hash_index_without_dedup,
        )
        system = SmartIceberg(DB, analyze="strict")
        with pytest.raises(PlanVerificationError):
            system.optimize(MUTATION_SQL)

    def test_warn_mode_records_verifier_note(self, monkeypatch):
        monkeypatch.setattr(
            planner_module,
            "_matching_hash_index",
            _matching_hash_index_without_dedup,
        )
        optimized = SmartIceberg(DB, analyze="warn").optimize(MUTATION_SQL)
        assert any(
            note.startswith("verifier:") and "dropped predicate" in note
            for note in optimized.report.notes
        )


def walk_nodes(node):
    yield node
    for child in node.get("children", ()):
        yield from walk_nodes(child)
    for key in ("subplan", "qb_plan", "qr_plan"):
        if key in node:
            yield from walk_nodes(node[key])


class TestPlanToDict:
    """Satellite (b): machine-readable plan dump mirroring explain()."""

    def test_structure_and_json_serializable(self):
        planned = plan_query(
            DB, parse(figure1_queries()["Q1"].sql), EngineConfig.smart()
        )
        node = planned.to_dict()
        json.dumps(node)  # must not raise
        assert node["columns"] == list(planned.columns)
        root = node["root"]
        assert {"operator", "columns", "children"} <= set(root)

    def test_operators_mirror_explain(self):
        planned = plan_query(
            DB, parse(figure1_queries()["Q1"].sql), EngineConfig.smart()
        )
        dumped = {
            n["operator"] for n in walk_nodes(planned.to_dict()["root"])
        }
        for line in planned.explain().splitlines():
            assert line.split()[0] in dumped

    def test_nljp_node_exposes_features_and_subplans(self):
        optimized = SmartIceberg(DB).optimize(figure1_queries()["Q1"].sql)
        document = optimized.planned.to_dict()
        json.dumps(document)
        nljp = next(
            n for n in walk_nodes(document["root"]) if "qb_plan" in n
        )
        assert set(nljp["features"]) == {"pruning", "memo", "mode"}
        assert nljp["features"]["pruning"] is True
        assert "pruning_predicate" in nljp

    def test_cte_scan_includes_subplan(self):
        sql = (
            "WITH best AS (SELECT b.playerid, MAX(b.b_h) AS hits "
            "FROM batting b GROUP BY b.playerid) "
            "SELECT t.playerid FROM best t WHERE t.hits > 20"
        )
        planned = plan_query(DB, parse(sql), EngineConfig.smart())
        document = planned.to_dict()
        json.dumps(document)
        assert any(
            "subplan" in n for n in walk_nodes(document["root"])
        ), "materialized CTE scan should embed its sub-plan"
