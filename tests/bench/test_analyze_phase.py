"""Analyzer wall time as a separate bench phase (satellite f)."""

import pytest

from repro.bench import record
from repro.bench.harness import make_systems
from repro.workloads import BaseballConfig, figure1_queries, make_batting_db


def q1():
    return figure1_queries()["Q1"].sql


def test_measurement_record_has_analyze_seconds():
    db = make_batting_db(BaseballConfig(n_rows=120, seed=3))
    run = make_systems(("all",), analyze="strict")["all"]
    measurement = run(db, q1(), "Q1")
    item = record._measurement_record(measurement)
    assert "analyze_seconds" in item
    assert item["analyze_seconds"] > 0


def test_baselines_report_zero_analyze_time():
    db = make_batting_db(BaseballConfig(n_rows=120, seed=3))
    run = make_systems(("base",))["base"]
    measurement = run(db, q1(), "Q1")
    assert measurement.analyze_seconds == 0.0


def test_suite_runs_with_strict_analyzer():
    assert record.SUITE_ANALYZE == "strict"


@pytest.mark.benchmarks
def test_strict_analyze_overhead_under_two_percent_on_q1():
    # The analyzer's cost is per-query (constant in data size), so the
    # bound is checked where execution dominates: the memo-only system
    # evaluates Q1's inner query per distinct binding and runs ~seconds
    # at this scale, while strict analysis stays in the milliseconds.
    db = make_batting_db(BaseballConfig(n_rows=2400, seed=3))
    run = make_systems(("memo",), analyze="strict")["memo"]
    measurement = run(db, q1(), "Q1")
    total = measurement.seconds + measurement.optimize_seconds
    assert measurement.analyze_seconds > 0
    assert measurement.analyze_seconds < 0.02 * total, (
        f"analyze {measurement.analyze_seconds:.4f}s is >= 2% of "
        f"{total:.4f}s"
    )
