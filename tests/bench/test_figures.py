"""Smoke tests for the figure runners at tiny scale.

The full-size runs (with shape assertions) live in ``benchmarks/``;
these tests only verify that every figure function executes, returns a
well-formed report, and keeps its systems in agreement.
"""


from repro.bench import figures


class TestFigureRunners:
    def test_figure_1_tiny(self):
        report = figures.figure_1(n_rows=150, systems=("base", "all"))
        assert "Q1" in report.table
        assert report.measurements
        systems = {m.system for m in report.measurements}
        assert systems == {"postgres", "all"}

    def test_figure_2_tiny(self):
        report = figures.figure_2(n_rows=200, k=20)
        assert "b_h,b_hr" in report.series
        entry = report.series["b_h,b_hr"]
        assert 0 <= entry["skyband_fraction"] <= 1

    def test_figure_3_tiny(self):
        report = figures.figure_3(n_rows=150)
        assert set(report.series) >= {f"Q{i}" for i in range(1, 9)}
        assert report.series["input_kb"] > 0

    def test_figure_4_tiny(self):
        report = figures.figure_4(n_rows=150, k=10)
        assert set(report.series) == {
            "base PK", "base PK+BT", "smart PK", "smart PK+BT", "smart PK+BT+CI",
        }
        for entry in report.series.values():
            assert entry["cost"] > 0

    def test_figure_5_tiny(self):
        report = figures.figure_5(n_rows=150, thresholds=(2, 10))
        assert "k=2" in report.series["postgres"]
        assert "k=10" in report.series["all"]

    def test_figure_6_tiny(self):
        report = figures.figure_6(n_rows=400, thresholds=(2, 5))
        assert "t=2" in report.series["all"]

    def test_figure_7_tiny(self):
        report = figures.figure_7(sizes=(100, 200), k=10)
        assert "n=100" in report.series["postgres"]
        assert (
            report.series["postgres"]["n=200"]
            > report.series["postgres"]["n=100"]
        )

    def test_figure_8_tiny(self):
        report = figures.figure_8(sizes=(200, 400), threshold=3)
        assert "n=200" in report.series["all"]

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert figures.bench_scale() == 2.5
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert figures.bench_scale() == 1.0

    def test_report_str_is_table(self):
        report = figures.figure_2(n_rows=150, k=10)
        assert str(report) == report.table
