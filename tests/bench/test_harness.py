"""Tests for the benchmark harness."""

import pytest

from repro.bench.harness import (
    comparison_table,
    format_table,
    make_systems,
    run_comparison,
    speedup_over,
)
from repro.workloads import BasketConfig, load_baskets, market_basket_query
from repro.storage import Database


@pytest.fixture
def db():
    database = Database()
    load_baskets(database, BasketConfig(n_baskets=60, n_items=25, seed=4))
    return database


class TestSystems:
    def test_all_systems_available(self):
        systems = make_systems()
        assert set(systems) == {
            "base", "vendor", "pruning", "memo", "apriori", "all",
        }

    def test_subset_selection(self):
        assert list(make_systems(("base", "all"))) == ["base", "all"]

    def test_unknown_system_rejected(self):
        with pytest.raises(KeyError):
            make_systems(("warp-drive",))

    def test_runner_produces_measurement(self, db):
        runner = make_systems(("base",))["base"]
        measurement = runner(db, market_basket_query(3), "mb")
        assert measurement.system == "postgres"
        assert measurement.query == "mb"
        assert measurement.rows > 0
        assert measurement.cost > 0
        assert measurement.seconds > 0
        # postgres baseline simulates 2x parallelism.
        assert measurement.adjusted_seconds == pytest.approx(
            measurement.seconds / 2
        )

    def test_smart_runner_reports_optimize_time(self, db):
        runner = make_systems(("all",))["all"]
        measurement = runner(db, market_basket_query(3), "mb")
        assert measurement.optimize_seconds > 0
        assert measurement.adjusted_seconds == measurement.seconds


class TestRunComparison:
    def test_agreement_enforced(self, db):
        measurements = run_comparison(
            db,
            {"mb": market_basket_query(3)},
            make_systems(("base", "vendor", "all")),
        )
        assert len(measurements) == 3
        assert len({m.rows for m in measurements}) == 1

    def test_speedup_over(self, db):
        measurements = run_comparison(
            db, {"mb": market_basket_query(3)}, make_systems(("base", "all"))
        )
        speedups = speedup_over(measurements, baseline="postgres")
        assert ("mb", "all") in speedups
        assert speedups[("mb", "all")] > 0


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(
            ("name", "value"), [("a", 1), ("long-name", 22)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_comparison_table_contains_costs(self, db):
        measurements = run_comparison(
            db, {"mb": market_basket_query(3)}, make_systems(("base",))
        )
        text = comparison_table(measurements, "title")
        assert "work_cost" in text and "postgres" in text
