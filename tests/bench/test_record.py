"""Smoke tests for the perf-regression recorder (``repro.bench.record``).

The tiny-scale run here doubles as the CI "benchmarks" smoke job: it
executes the record harness end to end and fails if batch-mode
``cost()`` counters drift from row mode.
"""

import json

import pytest

from repro.bench import record


@pytest.mark.benchmarks
def test_record_tiny_scale_parity(tmp_path):
    out = tmp_path / "bench.json"
    code = record.main(
        ["--scale", "0.2", "--out", str(out), "--check", "--no-headline"]
    )
    assert code == 0, "batch-mode cost() counters drifted from row mode"
    document = json.loads(out.read_text())
    assert document["mode_parity_ok"] is True
    assert document["suite"]["seed"] == record.RECORD_SEED
    # One record per (query, system, mode) cell.
    expected = 8 * len(record.SUITE_SYSTEMS) * len(record.MODES)
    assert len(document["records"]) == expected
    modes = {r["mode"] for r in document["records"]}
    assert modes == {"row", "batch", "columnar"}
    # Record labels use the suite system names (not runner config
    # labels like "postgres").
    systems = {r["system"] for r in document["records"]}
    assert systems == set(record.SUITE_SYSTEMS)
    for item in document["records"]:
        assert item["cost"] >= 0
        assert set(item["counters"]) >= {"rows_scanned", "join_pairs"}
        assert "estimated_cost" in item
        if item["system"] in ("base", "vendor"):
            # Engine plans carry a planner cost estimate; NLJP plans
            # may legitimately record null.
            assert item["estimated_cost"] is not None
            assert item["estimated_cost"] > 0


def test_check_mode_parity_reports_drift():
    base = {
        "query": "Q1",
        "system": "base",
        "mode": "row",
        "cost": 10,
        "rows": 1,
        "counters": {"rows_scanned": 10},
    }
    columnar = dict(
        base,
        mode="columnar",
        cost=6,
        counters={"rows_scanned": 6, "rows_skipped": 4, "chunks_skipped": 1},
    )
    drifted = dict(base, mode="batch", cost=11, counters={"rows_scanned": 11})
    problems = record.check_mode_parity([base, drifted, columnar])
    assert any("cost drift" in p for p in problems)
    assert any("counter drift" in p for p in problems)
    clean = dict(base, mode="batch")
    assert record.check_mode_parity([base, clean, columnar]) == []


def test_check_mode_parity_catches_unsound_skip():
    """A zone-map skip that loses rows (scan+skip != row scan) drifts."""
    base = {
        "query": "Q1",
        "system": "base",
        "mode": "row",
        "cost": 10,
        "rows": 1,
        "counters": {"rows_scanned": 10},
    }
    batch = dict(base, mode="batch")
    unsound = dict(
        base,
        mode="columnar",
        cost=5,
        counters={"rows_scanned": 5, "rows_skipped": 3, "chunks_skipped": 1},
    )
    problems = record.check_mode_parity([base, batch, unsound])
    assert any("columnar" in p for p in problems)
