"""Shared fixtures: small, deterministic databases for every suite."""

from __future__ import annotations

import random

import pytest

from repro.storage import Database, SqlType, TableSchema


@pytest.fixture
def basket_db() -> Database:
    """The paper's Listing 1 schema with hand-placed data.

    Items: 'ale' and 'bread' co-occur in 4 baskets; 'cork' appears
    twice, once with 'ale'; 'date' once.
    """
    db = Database()
    table = db.create_table(
        "basket",
        TableSchema.of(("bid", SqlType.INTEGER), ("item", SqlType.TEXT)),
        primary_key=("bid", "item"),
    )
    rows = [
        (1, "ale"), (1, "bread"),
        (2, "ale"), (2, "bread"),
        (3, "ale"), (3, "bread"), (3, "cork"),
        (4, "ale"), (4, "bread"),
        (5, "cork"), (5, "date"),
    ]
    table.insert_many(rows)
    table.create_index("basket_bid", ["bid"], kind="hash")
    return db


@pytest.fixture
def object_db() -> Database:
    """Listing 2's Object(id, x, y) with 60 deterministic points."""
    db = Database()
    table = db.create_table(
        "object",
        TableSchema.of(
            ("id", SqlType.INTEGER), ("x", SqlType.INTEGER), ("y", SqlType.INTEGER)
        ),
        primary_key=("id",),
    )
    rng = random.Random(17)
    table.insert_many(
        (i, rng.randint(0, 30), rng.randint(0, 30)) for i in range(60)
    )
    table.create_index("object_xy", ["x", "y"], kind="sorted")
    return db


@pytest.fixture
def score_db() -> Database:
    """Listing 4's Score schema with a small deterministic instance."""
    db = Database()
    table = db.create_table(
        "score",
        TableSchema.of(
            ("pid", SqlType.INTEGER),
            ("year", SqlType.INTEGER),
            ("round", SqlType.INTEGER),
            ("teamid", SqlType.INTEGER),
            ("hits", SqlType.INTEGER),
            ("hruns", SqlType.INTEGER),
        ),
        primary_key=("pid", "year", "round"),
    )
    db.declare_domain("score", "hits", lower=0)
    db.declare_domain("score", "hruns", lower=0)
    rng = random.Random(23)
    rows = []
    for pid in range(18):
        team = pid % 3
        for year in range(2000, 2000 + rng.randint(2, 6)):
            rows.append(
                (pid, year, 1, team, rng.randint(0, 180), rng.randint(0, 40))
            )
    table.insert_many(rows)
    table.create_index("score_team", ["teamid", "year", "round"], kind="hash")
    return db


@pytest.fixture
def product_db() -> Database:
    """Listing 3's Product(id, category, attr, val) with id -> category."""
    db = Database()
    table = db.create_table(
        "product",
        TableSchema.of(
            ("id", SqlType.INTEGER),
            ("category", SqlType.TEXT),
            ("attr", SqlType.TEXT),
            ("val", SqlType.FLOAT),
        ),
        primary_key=("id", "attr"),
    )
    db.declare_fd("product", ["id"], ["category"])
    db.declare_domain("product", "val", lower=0)
    rng = random.Random(31)
    rows = []
    for pid in range(40):
        category = f"cat{pid % 2}"
        for attr in ("a", "b"):
            rows.append((pid, category, attr, float(rng.randint(0, 25))))
    table.insert_many(rows)
    table.create_index("product_cat_attr", ["category", "attr"], kind="hash")
    table.create_index("product_id", ["id"], kind="hash")
    return db
