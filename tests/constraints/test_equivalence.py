"""Tests for attribute equivalence classes (union-find)."""

from repro.constraints.equivalence import EquivalenceClasses


class TestMergeFind:
    def test_reflexive(self):
        classes = EquivalenceClasses()
        assert classes.same("a", "a")

    def test_merge_two(self):
        classes = EquivalenceClasses()
        classes.merge("a", "b")
        assert classes.same("a", "b")
        assert classes.same("b", "a")

    def test_transitive(self):
        classes = EquivalenceClasses()
        classes.merge("a", "b")
        classes.merge("b", "c")
        assert classes.same("a", "c")

    def test_disjoint(self):
        classes = EquivalenceClasses()
        classes.merge("a", "b")
        classes.merge("x", "y")
        assert not classes.same("a", "x")

    def test_case_insensitive(self):
        classes = EquivalenceClasses()
        classes.merge("S1.ID", "s2.id")
        assert classes.same("s1.id", "S2.ID")


class TestInspection:
    def test_members(self):
        classes = EquivalenceClasses()
        classes.merge("a", "b")
        classes.merge("b", "c")
        assert classes.members("a") == {"a", "b", "c"}

    def test_members_of_singleton(self):
        classes = EquivalenceClasses()
        assert classes.members("lonely") == {"lonely"}

    def test_classes_only_nontrivial(self):
        classes = EquivalenceClasses()
        classes.merge("a", "b")
        classes.members("solo")  # registers but stays singleton
        groups = classes.classes()
        assert groups == [{"a", "b"}]

    def test_pairs(self):
        classes = EquivalenceClasses()
        classes.merge("a", "b")
        classes.merge("b", "c")
        pairs = set(classes.pairs())
        assert pairs == {("a", "b"), ("a", "c")}
