"""Tests for functional dependencies and closures."""

from hypothesis import given, strategies as st

from repro.constraints.fd import FDSet, FunctionalDependency, attrs


class TestFunctionalDependency:
    def test_normalizes_case(self):
        dep = FunctionalDependency.of(["ID"], ["Category"])
        assert dep.lhs == frozenset({"id"})
        assert dep.rhs == frozenset({"category"})

    def test_trivial(self):
        assert FunctionalDependency.of(["a", "b"], ["a"]).is_trivial()
        assert not FunctionalDependency.of(["a"], ["b"]).is_trivial()

    def test_rename(self):
        dep = FunctionalDependency.of(["id"], ["cat"]).rename("s1")
        assert dep.lhs == frozenset({"s1.id"})
        assert dep.rhs == frozenset({"s1.cat"})

    def test_empty_lhs_allowed(self):
        dep = FunctionalDependency.of([], ["const"])
        assert dep.lhs == frozenset()


class TestClosure:
    def test_textbook_closure(self):
        fds = FDSet(
            [
                FunctionalDependency.of(["a"], ["b"]),
                FunctionalDependency.of(["b"], ["c"]),
            ]
        )
        assert fds.closure(["a"]) == attrs("a", "b", "c")
        assert fds.closure(["b"]) == attrs("b", "c")
        assert fds.closure(["c"]) == attrs("c")

    def test_composite_lhs(self):
        fds = FDSet([FunctionalDependency.of(["a", "b"], ["c"])])
        assert "c" not in fds.closure(["a"])
        assert "c" in fds.closure(["a", "b"])

    def test_empty_lhs_fd_always_fires(self):
        fds = FDSet([FunctionalDependency.of([], ["k"])])
        assert "k" in fds.closure(["x"])

    def test_implies(self):
        fds = FDSet([FunctionalDependency.of(["a"], ["b"])])
        assert fds.implies(FunctionalDependency.of(["a", "x"], ["b"]))
        assert not fds.implies(FunctionalDependency.of(["b"], ["a"]))

    def test_determines(self):
        fds = FDSet([FunctionalDependency.of(["a"], ["b", "c"])])
        assert fds.determines(["a"], ["c"])


class TestSuperkey:
    def test_key_is_superkey(self):
        fds = FDSet()
        fds.add_key(["id"], ["id", "name", "val"])
        assert fds.is_superkey(["id"], ["id", "name", "val"])
        assert fds.is_superkey(["id", "name"], ["id", "name", "val"])
        assert not fds.is_superkey(["name"], ["id", "name", "val"])

    def test_transitive_superkey(self):
        fds = FDSet(
            [
                FunctionalDependency.of(["a"], ["b"]),
                FunctionalDependency.of(["b"], ["c"]),
            ]
        )
        assert fds.is_superkey(["a"], ["a", "b", "c"])


class TestSetOperations:
    def test_add_dedups(self):
        fds = FDSet()
        dep = FunctionalDependency.of(["a"], ["b"])
        fds.add(dep)
        fds.add(dep)
        assert len(fds) == 1

    def test_renamed(self):
        fds = FDSet([FunctionalDependency.of(["id"], ["cat"])])
        renamed = fds.renamed("t")
        assert renamed.determines(["t.id"], ["t.cat"])
        assert not renamed.determines(["id"], ["cat"])

    def test_union(self):
        left = FDSet([FunctionalDependency.of(["a"], ["b"])])
        right = FDSet([FunctionalDependency.of(["b"], ["c"])])
        assert left.union(right).determines(["a"], ["c"])

    def test_minimal_cover_keys(self):
        fds = FDSet()
        fds.add_key(["a", "b"], ["a", "b", "c"])
        fds.add(FunctionalDependency.of(["a"], ["b"]))
        keys = fds.minimal_cover_keys(["a", "b", "c"])
        assert keys == [("a",)]


@given(
    st.lists(
        st.tuples(
            st.sets(st.sampled_from("abcde"), min_size=1, max_size=2),
            st.sets(st.sampled_from("abcde"), min_size=1, max_size=2),
        ),
        max_size=6,
    ),
    st.sets(st.sampled_from("abcde"), min_size=1, max_size=3),
)
def test_closure_is_monotone_and_idempotent(dependency_specs, start):
    """Properties of closure: extensive, monotone, idempotent."""
    fds = FDSet(
        FunctionalDependency.of(lhs, rhs) for lhs, rhs in dependency_specs
    )
    closure = fds.closure(start)
    assert frozenset(start) <= closure  # extensive
    assert fds.closure(closure) == closure  # idempotent
    bigger = fds.closure(set(start) | {"a"})
    assert closure <= bigger or "a" in start  # monotone
