"""Tests for FD inference over joins and grouped outputs."""

from repro.constraints.fd import FDSet, FunctionalDependency
from repro.constraints.inference import (
    equality_conjuncts,
    grouped_output_fds,
    join_fds,
)
from repro.sql.parser import parse_expression


class TestEqualityConjuncts:
    def test_extracts_column_pairs(self):
        conjuncts = [
            parse_expression("a.x = b.y"),
            parse_expression("a.x < b.y"),
            parse_expression("a.x = 5"),
        ]
        pairs = equality_conjuncts(conjuncts)
        assert len(pairs) == 1
        assert pairs[0][0].qualified() == "a.x"


class TestJoinFds:
    def test_component_fds_qualified(self):
        per_alias = {"s1": FDSet([FunctionalDependency.of(["id"], ["cat"])])}
        fds = join_fds(per_alias, [])
        assert fds.determines(["s1.id"], ["s1.cat"])

    def test_equality_adds_bidirectional_fds(self):
        fds = join_fds({}, [parse_expression("a.x = b.y")])
        assert fds.determines(["a.x"], ["b.y"])
        assert fds.determines(["b.y"], ["a.x"])

    def test_constant_equality_adds_empty_lhs_fd(self):
        fds = join_fds({}, [parse_expression("a.x = 5")])
        assert fds.determines([], ["a.x"])
        fds2 = join_fds({}, [parse_expression("5 = a.x")])
        assert fds2.determines([], ["a.x"])

    def test_example_13_superkey_derivation(self):
        """The Appendix D closure argument for R = {S2, T2}."""
        product = FDSet()
        product.add_key(["id", "attr"], ["id", "category", "attr", "val"])
        per_alias = {"s2": product, "t2": product}
        conjuncts = [
            parse_expression("t2.attr = s2.attr"),  # internal to R
        ]
        fds = join_fds(per_alias, conjuncts)
        # G_R ∪ J_R^= = {s2.attr} ∪ {s2.id, t2.id}.
        attributes = [
            "s2.id", "s2.category", "s2.attr", "s2.val",
            "t2.id", "t2.category", "t2.attr", "t2.val",
        ]
        assert fds.is_superkey(["s2.attr", "s2.id", "t2.id"], attributes)
        # Without t2.id it is not a superkey.
        assert not fds.is_superkey(["s2.attr", "s2.id"], attributes)


class TestGroupedOutputFds:
    def test_group_columns_form_key(self):
        group = (
            parse_expression("s1.pid"),
            parse_expression("s2.pid"),
        )
        outputs = [
            ("pid1", parse_expression("s1.pid")),
            ("pid2", parse_expression("s2.pid")),
            ("hits1", parse_expression("AVG(s1.hits)")),
        ]
        fds = grouped_output_fds(group, outputs)
        assert fds.is_superkey(["pid1", "pid2"], ["pid1", "pid2", "hits1"])

    def test_unprojected_group_expr_yields_no_key(self):
        group = (parse_expression("s1.pid"), parse_expression("s2.pid"))
        outputs = [
            ("pid1", parse_expression("s1.pid")),
            ("hits1", parse_expression("AVG(s1.hits)")),
        ]
        fds = grouped_output_fds(group, outputs)
        # s2.pid is not projected, so pid1 alone must NOT be a key.
        assert not fds.is_superkey(["pid1"], ["pid1", "hits1"])
