"""Tests for generalized a-priori: Theorems 1-2, Examples 4-8."""

import pytest

from repro.sql import render
from repro.sql.parser import parse
from repro.storage import Database, SqlType, TableSchema
from repro.engine import execute
from repro.core.apriori import (
    apply_reducer_to_select,
    build_reducer,
    check_apriori,
    is_non_deflationary,
    is_non_inflationary,
)
from repro.core.iceberg import IcebergBlock
from repro.core.monotonicity import Monotonicity


def analyze(db, sql):
    return IcebergBlock(parse(sql).body, db)


MARKET_BASKET = (
    "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 "
    "WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 2"
)


class TestExample6MarketBasket:
    def test_apriori_safe_both_sides(self, basket_db):
        block = analyze(basket_db, MARKET_BASKET)
        assert check_apriori(block.partition(["i1"]), left=True)
        assert check_apriori(block.partition(["i2"]), left=True)

    def test_anti_monotone_variant_unsafe(self, basket_db):
        """COUNT(*) <= 20 requires item -> bid, which fails."""
        sql = MARKET_BASKET.replace(">= 2", "<= 20")
        block = analyze(basket_db, sql)
        decision = check_apriori(block.partition(["i1"]), left=True)
        assert not decision.applicable
        assert "does not determine" in decision.reason

    def test_reducer_sql_shape(self, basket_db):
        block = analyze(basket_db, MARKET_BASKET)
        reducer = build_reducer(block.partition(["i1"]), left=True)
        text = render(reducer.query)
        assert "GROUP BY i1.item" in text
        assert "HAVING COUNT(*) >= 2" in text
        assert reducer.target_aliases == ("i1",)

    def test_rewrite_preserves_results(self, basket_db):
        block = analyze(basket_db, MARKET_BASKET)
        reducer = build_reducer(block.partition(["i1"]), left=True)
        original = parse(MARKET_BASKET).body
        rewritten = apply_reducer_to_select(original, reducer)
        before = execute(basket_db, original)
        after = execute(basket_db, rewritten)
        assert sorted(before.rows) == sorted(after.rows)
        assert len(before.rows) > 0


class TestExample7Discount:
    SQL = (
        "SELECT item, rate FROM dbasket L, discount R WHERE L.did = R.did "
        "GROUP BY item, rate HAVING COUNT(DISTINCT bid) >= 3"
    )

    @pytest.fixture
    def db(self):
        from repro.workloads.basket import load_discount_schema

        database = Database()
        load_discount_schema(database, n_baskets=60, n_items=10, n_discounts=4)
        return database

    def test_safe_for_basket_not_discount(self, db):
        block = analyze(db, self.SQL)
        assert check_apriori(block.partition(["l"]), left=True)
        assert not check_apriori(block.partition(["r"]), left=True)

    def test_anti_monotone_with_item_determines_did(self, db):
        """With item -> did declared, the <= variant is safe via G_L -> J_L."""
        db.declare_fd("dbasket", ["item"], ["did"])
        sql = self.SQL.replace(">= 3", "<= 3")
        block = analyze(db, sql)
        decision = check_apriori(block.partition(["l"]), left=True)
        assert decision.applicable
        assert decision.monotonicity is Monotonicity.ANTI_MONOTONE

    def test_rewrite_correct(self, db):
        block = analyze(db, self.SQL)
        reducer = build_reducer(block.partition(["l"]), left=True)
        rewritten = apply_reducer_to_select(parse(self.SQL).body, reducer)
        before = execute(db, parse(self.SQL).body)
        after = execute(db, rewritten)
        assert sorted(before.rows) == sorted(after.rows)


class TestExample5Counterexamples:
    """The instances showing Theorem 1's conditions are tight."""

    def test_monotone_inflationary_breaks_apriori(self):
        """L={(u,w)}, R={(w,z1,v),(w,z2,v)}, COUNT(*) >= 2."""
        db = Database()
        left = db.create_table(
            "l", TableSchema.of(("g", SqlType.TEXT), ("j", SqlType.INTEGER))
        )
        right = db.create_table(
            "r",
            TableSchema.of(
                ("j", SqlType.INTEGER), ("o", SqlType.INTEGER), ("g", SqlType.TEXT)
            ),
        )
        left.insert(("u", 1))
        right.insert_many([(1, 1, "v"), (1, 2, "v")])
        sql = (
            "SELECT l.g, r.g, COUNT(*) FROM l, r WHERE l.j = r.j "
            "GROUP BY l.g, r.g HAVING COUNT(*) >= 2"
        )
        # The schema-based check refuses (no FD makes G_R ∪ J_R^= a key).
        block = analyze(db, sql)
        assert not check_apriori(block.partition(["l"]), left=True)
        # And indeed the instance is inflationary.
        assert not is_non_inflationary(
            list(left.rows),
            list(right.rows),
            joins=lambda l, r: l[1] == r[0],
            group_left=lambda l: l[0],
            group_right=lambda r: r[2],
        )
        # Applying a-priori anyway would lose the only result group.
        reducer_applied = execute(
            db,
            "SELECT l.g, r.g, COUNT(*) FROM l, r WHERE l.j = r.j "
            "AND l.g IN (SELECT l.g FROM l GROUP BY l.g HAVING COUNT(*) >= 2) "
            "GROUP BY l.g, r.g HAVING COUNT(*) >= 2",
        )
        correct = execute(db, sql)
        assert len(correct.rows) == 1
        assert len(reducer_applied.rows) == 0  # wrong: the point of Ex. 5

    def test_anti_monotone_deflationary_breaks_apriori(self):
        """L={(u,w1),(u,w2)}, R={(w1,v)}, COUNT(*) <= 1."""
        db = Database()
        left = db.create_table(
            "l", TableSchema.of(("g", SqlType.TEXT), ("j", SqlType.INTEGER))
        )
        right = db.create_table(
            "r", TableSchema.of(("j", SqlType.INTEGER), ("g", SqlType.TEXT))
        )
        left.insert_many([("u", 1), ("u", 2)])
        right.insert((1, "v"))
        sql = (
            "SELECT l.g, r.g, COUNT(*) FROM l, r WHERE l.j = r.j "
            "GROUP BY l.g, r.g HAVING COUNT(*) <= 1"
        )
        block = analyze(db, sql)
        assert not check_apriori(block.partition(["l"]), left=True)
        assert not is_non_deflationary(
            list(left.rows),
            list(right.rows),
            joins=lambda l, r: l[1] == r[0],
            group_left=lambda l: l[0],
            group_right=lambda r: r[1],
        )


class TestInstanceChecks:
    def test_non_inflationary_market_basket(self, basket_db):
        """Example 4: at most one i2 per (i1 row, i2 group) pair."""
        rows = list(basket_db.table("basket").rows)
        assert is_non_inflationary(
            rows,
            rows,
            joins=lambda l, r: l[0] == r[0],
            group_left=lambda l: l[1],
            group_right=lambda r: r[1],
        )

    def test_non_deflationary_when_groups_fix_join(self):
        rows_left = [("g1", 1), ("g1", 1), ("g2", 2)]
        rows_right = [(1, "h"), (2, "h")]
        assert is_non_deflationary(
            rows_left,
            rows_right,
            joins=lambda l, r: l[1] == r[0],
            group_left=lambda l: l[0],
            group_right=lambda r: r[1],
        )


class TestSkybandNotApplicable:
    def test_no_group_attrs_on_reduced_side(self, object_db):
        sql = (
            "SELECT L.id, COUNT(*) FROM object L, object R "
            "WHERE L.x <= R.x AND L.y <= R.y "
            "GROUP BY L.id HAVING COUNT(*) <= 5"
        )
        block = analyze(object_db, sql)
        decision = check_apriori(block.partition(["r"]), left=True)
        assert not decision.applicable
        assert "no GROUP BY attributes" in decision.reason

    def test_unknown_monotonicity_blocks(self, score_db):
        sql = (
            "SELECT s1.pid, COUNT(*) FROM score s1, score s2 "
            "WHERE s1.teamid = s2.teamid GROUP BY s1.pid "
            "HAVING AVG(s1.hits) >= 10"
        )
        block = analyze(score_db, sql)
        decision = check_apriori(block.partition(["s1"]), left=True)
        assert not decision.applicable
        assert "monotonicity" in decision.reason


class TestInflationaryGrouping:
    def test_missing_g_r_makes_query_inflationary(self, basket_db):
        """Grouping only by i1.item: one i1-row can contribute several
        joined tuples to the same group (one per basket companion), so
        the non-inflationary check must fail and a-priori is unsafe."""
        sql = (
            "SELECT i1.item, COUNT(*) FROM basket i1, basket i2 "
            "WHERE i1.bid = i2.bid GROUP BY i1.item HAVING COUNT(*) >= 1"
        )
        block = analyze(basket_db, sql)
        decision = check_apriori(block.partition(["i1"]), left=True)
        assert not decision.applicable
        assert "superkey" in decision.reason
