"""Tests for the NLJP cache: memo lookups, prune candidates, policies."""

import pytest

from repro.core.cache import NLJPCache, entry_bytes


def payload(*groups):
    return tuple(groups)


class TestMemoPath:
    def test_miss_then_hit(self):
        cache = NLJPCache()
        assert cache.get((1, 2)) is None
        cache.put((1, 2), payload(((), (5,))), unpromising=False)
        entry = cache.get((1, 2))
        assert entry is not None and entry.payload == (((), (5,)),)
        assert cache.lookups == 2 and cache.hits == 1

    def test_hit_counts_per_entry(self):
        cache = NLJPCache()
        cache.put((1,), payload(), unpromising=True)
        cache.get((1,))
        cache.get((1,))
        assert cache.get((1,)).hits == 3

    def test_rows(self):
        cache = NLJPCache()
        cache.put((1,), payload(), unpromising=True)
        cache.put((2,), payload(), unpromising=False)
        assert cache.rows == 2
        assert len(cache) == 2


class TestPruneCandidates:
    def test_only_unpromising_entries(self):
        cache = NLJPCache()
        cache.put((1,), payload(), unpromising=True)
        cache.put((2,), payload(((), (1,))), unpromising=False)
        candidates = list(cache.prune_candidates((9,)))
        assert [entry.binding for entry in candidates] == [(1,)]

    def test_equality_bucket_index(self):
        cache = NLJPCache(equality_positions=(0,), use_index=True)
        cache.put(("a", 1), payload(), unpromising=True)
        cache.put(("b", 2), payload(), unpromising=True)
        candidates = list(cache.prune_candidates(("a", 9)))
        assert [e.binding for e in candidates] == [("a", 1)]

    def test_without_index_scans_all(self):
        cache = NLJPCache(equality_positions=(0,), use_index=False)
        cache.put(("a", 1), payload(), unpromising=True)
        cache.put(("b", 2), payload(), unpromising=True)
        assert len(list(cache.prune_candidates(("a", 9)))) == 2

    def test_order_index_narrows(self):
        cache = NLJPCache(order_position=0, use_index=True)
        for value in (1, 3, 5, 7):
            cache.put((value,), payload(), unpromising=True)
        candidates = list(cache.prune_candidates((0,), low=4))
        assert sorted(e.binding[0] for e in candidates) == [5, 7]
        candidates = list(cache.prune_candidates((0,), high=3, high_strict=True))
        assert sorted(e.binding[0] for e in candidates) == [1]

    def test_order_index_unbounded_falls_back(self):
        cache = NLJPCache(order_position=0, use_index=True)
        cache.put((1,), payload(), unpromising=True)
        assert len(list(cache.prune_candidates((0,)))) == 1


class TestReplacement:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            NLJPCache(policy="fifo")
        with pytest.raises(ValueError):
            NLJPCache(policy="lru")  # needs max_entries

    def test_lru_evicts_oldest(self):
        cache = NLJPCache(max_entries=2, policy="lru")
        cache.put((1,), payload(), unpromising=False)
        cache.put((2,), payload(), unpromising=False)
        cache.get((1,))  # refresh 1
        cache.put((3,), payload(), unpromising=False)
        assert cache.get((1,)) is not None
        assert cache.get((2,)) is None
        assert cache.evictions == 1

    def test_utility_evicts_least_hit(self):
        cache = NLJPCache(max_entries=2, policy="utility")
        cache.put((1,), payload(), unpromising=False)
        cache.put((2,), payload(), unpromising=False)
        cache.get((2,))
        cache.put((3,), payload(), unpromising=False)
        assert cache.get((2,)) is not None
        assert cache.get((1,)) is None

    def test_eviction_cleans_prune_structures(self):
        cache = NLJPCache(max_entries=1, policy="lru", order_position=0)
        cache.put((1,), payload(), unpromising=True)
        cache.put((2,), payload(), unpromising=True)
        candidates = list(cache.prune_candidates((0,), low=0))
        assert [e.binding for e in candidates] == [(2,)]
        assert len(cache._unpromising_all) == 1


class TestFootprint:
    def test_bytes_grow_with_payload(self):
        small = NLJPCache()
        small.put((1,), payload(), unpromising=True)
        big = NLJPCache()
        big.put(
            ("some-long-binding-value", 2),
            payload((("g",), (1, 2.5, (3, 4)))),
            unpromising=False,
        )
        assert big.estimated_bytes() > small.estimated_bytes()

    def test_incremental_bytes_match_per_entry_sizes(self):
        """bytes_used is exactly the sum of entry_bytes over entries."""
        cache = NLJPCache()
        assert cache.estimated_bytes() == 0
        expected = 0
        for i in range(5):
            entry = cache.put(
                (i, f"key{i}"), payload(((i,), (i * 2, 2.5))), unpromising=i % 2 == 0
            )
            expected += entry_bytes(entry)
            assert cache.estimated_bytes() == expected

    def test_overwrite_replaces_footprint(self):
        cache = NLJPCache()
        cache.put((1,), payload((("x" * 50,), (1,))), unpromising=False)
        before = cache.estimated_bytes()
        entry = cache.put((1,), payload(), unpromising=False)
        assert cache.estimated_bytes() == entry_bytes(entry) < before

    def test_eviction_releases_bytes(self):
        cache = NLJPCache(max_entries=2, policy="lru")
        cache.put((1,), payload((("a",), (1,))), unpromising=False)
        cache.put((2,), payload((("b",), (2,))), unpromising=False)
        cache.put((3,), payload((("c",), (3,))), unpromising=False)
        assert cache.estimated_bytes() == sum(
            entry_bytes(cache.get(b)) for b in ((2,), (3,))
        )

    def test_evict_until_honours_keep(self):
        cache = NLJPCache()
        for i in range(4):
            kept = cache.put((i,), payload(((i,), (i,))), unpromising=True)
        evicted = cache.evict_until(0, keep=kept)
        assert evicted == 3
        assert cache.get((3,)) is kept
        assert cache.estimated_bytes() == entry_bytes(kept)
        # The kept entry alone still exceeds the budget: no progress.
        assert cache.evict_until(0, keep=kept) == 0

    def test_clear_zeroes_everything(self):
        cache = NLJPCache(order_position=0)
        cache.put((1,), payload(), unpromising=True)
        cache.put((2,), payload(), unpromising=False)
        cache.clear()
        assert len(cache) == 0
        assert cache.estimated_bytes() == 0
        assert list(cache.prune_candidates((0,), low=0)) == []
