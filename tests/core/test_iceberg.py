"""Tests for the iceberg block analysis (Section 3's notation machinery)."""

import pytest

from repro.errors import OptimizationError
from repro.sql.parser import parse
from repro.core.iceberg import IcebergBlock
from repro.core.monotonicity import Monotonicity


def analyze(db, sql, cte_infos=None):
    return IcebergBlock(parse(sql).body, db, cte_infos)


MARKET_BASKET = (
    "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 "
    "WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item HAVING COUNT(*) >= 20"
)

SKYBAND = (
    "SELECT L.id, COUNT(*) FROM object L, object R "
    "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
    "GROUP BY L.id HAVING COUNT(*) <= 50"
)


class TestExample3Quantities:
    """Example 3 spells out G, J, Θ, Φ for the pairs query's blocks."""

    def test_market_basket_partition(self, basket_db):
        block = analyze(basket_db, MARKET_BASKET)
        view = block.partition(["i1"])
        assert view.g_left == {"i1.item"}
        assert view.g_right == {"i2.item"}
        assert view.j_left == {"i1.bid"}
        assert view.j_right == {"i2.bid"}
        assert view.j_left_eq == {"i1.bid"}
        assert len(view.theta) == 1

    def test_skyband_partition(self, object_db):
        block = analyze(object_db, SKYBAND)
        view = block.partition(["l"])
        assert view.g_left == {"l.id"}
        assert view.g_right == frozenset()
        assert view.j_left == {"l.x", "l.y"}
        assert view.j_right == {"r.x", "r.y"}
        assert view.j_left_eq == frozenset()  # inequality joins only

    def test_monotonicity_detected(self, basket_db, object_db):
        assert (
            analyze(basket_db, MARKET_BASKET).phi_monotonicity()
            is Monotonicity.MONOTONE
        )
        assert (
            analyze(object_db, SKYBAND).phi_monotonicity()
            is Monotonicity.ANTI_MONOTONE
        )


class TestApplicability:
    def test_phi_applicable_both_sides_for_count_star(self, basket_db):
        view = analyze(basket_db, MARKET_BASKET).partition(["i1"])
        assert view.phi_applicable_to(left=True)
        assert view.phi_applicable_to(left=False)

    def test_phi_with_attributes_only_owning_side(self, score_db):
        sql = (
            "SELECT s1.pid, COUNT(*) FROM score s1, score s2 "
            "WHERE s1.teamid = s2.teamid "
            "GROUP BY s1.pid HAVING MAX(s2.hits) >= 10"
        )
        view = analyze(score_db, sql).partition(["s1"])
        assert not view.phi_applicable_to(left=True)
        assert view.phi_applicable_to(left=False)

    def test_lambda_aggregates_side(self, score_db):
        sql = (
            "SELECT s1.pid, AVG(s2.hits) FROM score s1, score s2 "
            "WHERE s1.teamid = s2.teamid "
            "GROUP BY s1.pid HAVING COUNT(*) >= 2"
        )
        view = analyze(score_db, sql).partition(["s1"])
        assert view.lambda_aggregates_applicable_to(left=False)
        assert not view.lambda_aggregates_applicable_to(left=True)


class TestSideFds:
    def test_base_table_key_becomes_qualified_fd(self, object_db):
        view = analyze(object_db, SKYBAND).partition(["l"])
        fds = view.fds(left=True)
        assert fds.is_superkey(["l.id"], ["l.id", "l.x", "l.y"])

    def test_internal_equalities_enter_fds(self, product_db):
        sql = (
            "SELECT s1.id, s1.attr, s2.attr, COUNT(*) "
            "FROM product s1, product s2, product t1, product t2 "
            "WHERE s1.id = s2.id AND t1.id = t2.id "
            "AND s1.category = t1.category "
            "AND t1.attr = s1.attr AND t2.attr = s2.attr "
            "AND t1.val > s1.val AND t2.val > s2.val "
            "GROUP BY s1.id, s1.attr, s2.attr HAVING COUNT(*) >= 10"
        )
        view = analyze(product_db, sql).partition(["s1", "s2"])
        fds = view.fds(left=True)
        # s1.id = s2.id is internal, so s1.id determines everything.
        assert fds.is_superkey(
            ["s1.id", "s1.attr", "s2.attr"], view.attributes(left=True)
        )


class TestEquivalences:
    def test_congruence_derives_category_equality(self, product_db):
        sql = (
            "SELECT s1.id, s1.attr, s2.attr, COUNT(*) "
            "FROM product s1, product s2, product t1, product t2 "
            "WHERE s1.id = s2.id AND t1.id = t2.id "
            "AND s1.category = t1.category "
            "AND t1.attr = s1.attr AND t2.attr = s2.attr "
            "AND T1.val > S1.val AND T2.val > S2.val "
            "GROUP BY s1.id, s1.attr, s2.attr HAVING COUNT(*) >= 10"
        )
        block = analyze(product_db, sql)
        # id -> category plus the id equalities imply the s2/t2 pair.
        assert block.equivalences.same("s2.category", "t2.category")
        assert block.equivalences.same("s1.category", "s2.category")

    def test_group_substitution(self, product_db):
        sql = (
            "SELECT s1.id, s1.attr, s2.attr, COUNT(*) "
            "FROM product s1, product s2, product t1, product t2 "
            "WHERE s1.id = s2.id AND t1.id = t2.id "
            "AND s1.category = t1.category "
            "AND t1.attr = s1.attr AND t2.attr = s2.attr "
            "AND t1.val > s1.val AND t2.val > s2.val "
            "GROUP BY s1.id, s1.attr, s2.attr HAVING COUNT(*) >= 10"
        )
        view = analyze(product_db, sql).partition(["s2", "t2"])
        # s1.id gets substituted to s2.id on the left side.
        assert "s2.id" in view.g_left
        assert view.group_substitutions.get("s1.id") == "s2.id"


class TestValidation:
    def test_single_relation_rejected(self, object_db):
        with pytest.raises(OptimizationError):
            analyze(
                object_db,
                "SELECT id, COUNT(*) FROM object GROUP BY id HAVING COUNT(*) > 1",
            )

    def test_unknown_alias_rejected(self, object_db):
        with pytest.raises(OptimizationError):
            analyze(
                object_db,
                "SELECT L.id FROM object L, object R WHERE Z.x = 1 "
                "GROUP BY L.id HAVING COUNT(*) <= 5",
            )

    def test_partition_must_be_proper_subset(self, object_db):
        block = analyze(object_db, SKYBAND)
        with pytest.raises(OptimizationError):
            block.partition(["l", "r"])
        with pytest.raises(OptimizationError):
            block.partition([])

    def test_expression_group_by_rejected(self, object_db):
        block = analyze(
            object_db,
            "SELECT L.id % 2, COUNT(*) FROM object L, object R "
            "WHERE L.x <= R.x GROUP BY L.id % 2 HAVING COUNT(*) <= 5",
        )
        with pytest.raises(OptimizationError):
            block.partition(["l"]).block.group_by_attributes()

    def test_ambiguous_unqualified_rejected(self, object_db):
        with pytest.raises(OptimizationError):
            analyze(
                object_db,
                "SELECT x FROM object L, object R WHERE x < 1 "
                "GROUP BY L.id HAVING COUNT(*) <= 5",
            )


class TestCteInfos:
    def test_cte_relation_uses_provided_fds(self, score_db):
        from repro.constraints.fd import FDSet

        fds = FDSet()
        fds.add_key(["pid1", "pid2"], ["pid1", "pid2", "hits1"])
        infos = {"pair": (("pid1", "pid2", "hits1"), fds, frozenset({"hits1"}))}
        sql = (
            "SELECT L.pid1, L.pid2, COUNT(*) FROM pair L, pair R "
            "WHERE R.hits1 >= L.hits1 GROUP BY L.pid1, L.pid2 "
            "HAVING COUNT(*) <= 5"
        )
        block = analyze(score_db, sql, infos)
        view = block.partition(["l"])
        assert view.fds(True).is_superkey(
            ["l.pid1", "l.pid2"], ["l.pid1", "l.pid2", "l.hits1"]
        )
