"""Tests for Section 6's memoization applicability conditions."""


from repro.sql.parser import parse
from repro.core.iceberg import IcebergBlock
from repro.core.memo import check_memoization, collect_aggregates


def view_for(db, sql, left):
    return IcebergBlock(parse(sql).body, db).partition(left)


class TestApplicability:
    def test_skyband_memoizable(self, object_db):
        sql = (
            "SELECT L.id, COUNT(*) FROM object L, object R "
            "WHERE L.x <= R.x AND L.y <= R.y "
            "GROUP BY L.id HAVING COUNT(*) <= 5"
        )
        decision = check_memoization(view_for(object_db, sql, ["l"]))
        assert decision.applicable and decision.beneficial

    def test_phi_on_outer_refused(self, score_db):
        sql = (
            "SELECT s1.pid, COUNT(*) FROM score s1, score s2 "
            "WHERE s1.hits <= s2.hits GROUP BY s1.pid "
            "HAVING MAX(s1.hruns) >= 5"
        )
        decision = check_memoization(view_for(score_db, sql, ["s1"]))
        assert not decision.applicable

    def test_lambda_aggregates_on_outer_refused(self, score_db):
        sql = (
            "SELECT s1.pid, AVG(s1.hits), COUNT(*) FROM score s1, score s2 "
            "WHERE s1.hits <= s2.hits GROUP BY s1.pid "
            "HAVING COUNT(*) <= 5"
        )
        decision = check_memoization(view_for(score_db, sql, ["s1"]))
        assert not decision.applicable
        assert "SELECT aggregates" in decision.reason

    def test_j_l_key_means_not_beneficial(self, object_db):
        """J_L -> A_L: all bindings distinct, cache never hits."""
        sql = (
            "SELECT L.id, COUNT(*) FROM object L, object R "
            "WHERE L.id <= R.x GROUP BY L.id HAVING COUNT(*) <= 5"
        )
        decision = check_memoization(view_for(object_db, sql, ["l"]))
        assert decision.applicable
        assert not decision.beneficial
        assert not bool(decision)


class TestAlgebraicRequirement:
    def test_non_algebraic_fine_with_superkey(self, object_db):
        sql = (
            "SELECT L.id, COUNT(DISTINCT R.x) FROM object L, object R "
            "WHERE L.x <= R.x GROUP BY L.id "
            "HAVING COUNT(DISTINCT R.x) <= 5"
        )
        decision = check_memoization(view_for(object_db, sql, ["l"]))
        assert decision.applicable  # G_L -> A_L holds (id is key)

    def test_non_algebraic_refused_without_superkey(self, basket_db):
        # Group by item (not a key): COUNT(DISTINCT) cannot be combined.
        sql = (
            "SELECT i1.item, COUNT(DISTINCT i2.bid) FROM basket i1, basket i2 "
            "WHERE i1.bid = i2.bid GROUP BY i1.item "
            "HAVING COUNT(DISTINCT i2.bid) >= 2"
        )
        decision = check_memoization(view_for(basket_db, sql, ["i1"]))
        assert not decision.applicable
        assert "algebraic" in decision.reason

    def test_algebraic_allowed_without_superkey(self, basket_db):
        sql = (
            "SELECT i1.item, COUNT(*) FROM basket i1, basket i2 "
            "WHERE i1.bid = i2.bid GROUP BY i1.item "
            "HAVING COUNT(*) >= 2"
        )
        decision = check_memoization(view_for(basket_db, sql, ["i1"]))
        assert decision.applicable


class TestCollectAggregates:
    def test_dedup_across_phi_and_lambda(self, object_db):
        sql = (
            "SELECT L.id, COUNT(*) FROM object L, object R "
            "WHERE L.x <= R.x GROUP BY L.id HAVING COUNT(*) <= 5"
        )
        view = view_for(object_db, sql, ["l"])
        calls = collect_aggregates(view)
        assert len(calls) == 1  # COUNT(*) appears in both, counted once

    def test_multiple_distinct_aggregates(self, score_db):
        sql = (
            "SELECT s1.pid, AVG(s2.hits), MAX(s2.hruns) "
            "FROM score s1, score s2 WHERE s1.teamid = s2.teamid "
            "GROUP BY s1.pid HAVING COUNT(*) >= 2"
        )
        view = view_for(score_db, sql, ["s1"])
        names = sorted(c.name for c in collect_aggregates(view))
        assert names == ["AVG", "COUNT", "MAX"]
