"""Exhaustive verification of the Table 2 classification.

Each classified condition is checked against Definition 1 directly: we
enumerate many multiset pairs ``T ⊆ T'`` and verify the implication in
the direction the classification promises.  This is also where the
paper's Table 2 MIN-row erratum is pinned down (see the module
docstring of :mod:`repro.core.monotonicity`).
"""

import itertools

import pytest

from repro.sql import ast
from repro.sql.parser import parse_expression
from repro.core.monotonicity import Monotonicity, classify


def evaluate_condition(sql: str, values) -> bool:
    """Evaluate a HAVING condition over a multiset of 'a' values."""
    expr = parse_expression(sql)

    def compute(node):
        if isinstance(node, ast.FuncCall):
            name = node.name
            star = node.args and isinstance(node.args[0], ast.Star)
            non_null = [v for v in values if v is not None]
            pool = set(non_null) if node.distinct else non_null
            if name == "COUNT":
                return len(values) if star else len(pool)
            if not pool:
                return None
            if name == "SUM":
                return sum(pool)
            if name == "MIN":
                return min(pool)
            if name == "MAX":
                return max(pool)
            if name == "AVG":
                return sum(pool) / len(pool)
            raise AssertionError(name)
        if isinstance(node, ast.Literal):
            return node.value
        if isinstance(node, ast.BinaryOp):
            left, right = compute(node.left), compute(node.right)
            if node.op == "AND":
                return bool(left) and bool(right)
            if node.op == "OR":
                return bool(left) or bool(right)
            if left is None or right is None:
                return False
            return {
                ">=": left >= right,
                "<=": left <= right,
                ">": left > right,
                "<": left < right,
            }[node.op]
        if isinstance(node, ast.UnaryOp) and node.op == "NOT":
            return not compute(node.operand)
        raise AssertionError(node)

    return bool(compute(expr))


def verify_definition_1(sql: str, expected: Monotonicity) -> None:
    """Enumerate small multisets T ⊆ T' and check the implication."""
    universe = [0, 1, 2, 3]
    for size in range(1, 4):
        for bigger in itertools.combinations_with_replacement(universe, size):
            for keep in range(1, size + 1):
                for smaller in itertools.combinations(bigger, keep):
                    small_holds = evaluate_condition(sql, list(smaller))
                    big_holds = evaluate_condition(sql, list(bigger))
                    if expected is Monotonicity.MONOTONE and small_holds:
                        assert big_holds, (sql, smaller, bigger)
                    if expected is Monotonicity.ANTI_MONOTONE and big_holds:
                        assert small_holds, (sql, smaller, bigger)


NONNEG = lambda expr: True  # noqa: E731 - treat 'a' as nonnegative

TABLE_2 = [
    ("COUNT(*) >= 2", Monotonicity.MONOTONE),
    ("COUNT(*) <= 2", Monotonicity.ANTI_MONOTONE),
    ("COUNT(a) >= 2", Monotonicity.MONOTONE),
    ("COUNT(a) <= 2", Monotonicity.ANTI_MONOTONE),
    ("COUNT(DISTINCT a) >= 2", Monotonicity.MONOTONE),
    ("COUNT(DISTINCT a) <= 2", Monotonicity.ANTI_MONOTONE),
    ("SUM(a) >= 3", Monotonicity.MONOTONE),
    ("SUM(a) <= 3", Monotonicity.ANTI_MONOTONE),
    ("MAX(a) >= 2", Monotonicity.MONOTONE),
    ("MAX(a) <= 2", Monotonicity.ANTI_MONOTONE),
    # Erratum: the paper's Table 2 lists MIN >= as monotone; per
    # Definition 1 it is anti-monotone (adding tuples lowers MIN).
    ("MIN(a) >= 2", Monotonicity.ANTI_MONOTONE),
    ("MIN(a) <= 2", Monotonicity.MONOTONE),
]


class TestTable2:
    @pytest.mark.parametrize("sql,expected", TABLE_2)
    def test_classification(self, sql, expected):
        assert classify(parse_expression(sql), NONNEG) is expected

    @pytest.mark.parametrize("sql,expected", TABLE_2)
    def test_definition_1_holds(self, sql, expected):
        verify_definition_1(sql, expected)

    @pytest.mark.parametrize("sql,expected", TABLE_2)
    def test_strict_variant_same_class(self, sql, expected):
        strict = sql.replace(">=", ">") if ">=" in sql else sql.replace("<=", "<")
        assert classify(parse_expression(strict), NONNEG) is expected
        verify_definition_1(strict, expected)


class TestCombinations:
    def test_conjunction_same_class(self):
        phi = parse_expression("COUNT(*) >= 2 AND MAX(a) >= 5")
        assert classify(phi, NONNEG) is Monotonicity.MONOTONE

    def test_conjunction_mixed_is_unknown(self):
        phi = parse_expression("COUNT(*) >= 2 AND COUNT(*) <= 5")
        assert classify(phi, NONNEG) is Monotonicity.UNKNOWN

    def test_disjunction_same_class(self):
        phi = parse_expression("COUNT(*) <= 2 OR MAX(a) <= 5")
        assert classify(phi, NONNEG) is Monotonicity.ANTI_MONOTONE

    def test_not_flips(self):
        phi = parse_expression("NOT COUNT(*) >= 2")
        assert classify(phi, NONNEG) is Monotonicity.ANTI_MONOTONE

    def test_constant_is_both(self):
        assert classify(parse_expression("TRUE"), NONNEG) is Monotonicity.BOTH

    def test_reversed_operand_order(self):
        phi = parse_expression("2 <= COUNT(*)")
        assert classify(phi, NONNEG) is Monotonicity.MONOTONE

    def test_between_is_unknown(self):
        phi = parse_expression("COUNT(*) BETWEEN 2 AND 5")
        assert classify(phi, NONNEG) is Monotonicity.UNKNOWN


class TestSumDomainSensitivity:
    def test_sum_without_domain_knowledge_unknown(self):
        phi = parse_expression("SUM(a) >= 3")
        assert classify(phi) is Monotonicity.UNKNOWN
        assert classify(phi, lambda expr: False) is Monotonicity.UNKNOWN

    def test_sum_counterexample_with_negatives(self):
        """SUM >= c over negative values is genuinely not monotone."""
        assert evaluate_condition("SUM(a) >= 0", [1])
        # Adding a negative tuple breaks it: T={1} ⊆ T'={1, -5}.
        values = [1, -5]
        total = sum(values)
        assert total < 0  # so SUM >= 0 fails on the superset


class TestNonThresholds:
    def test_avg_is_unknown(self):
        phi = parse_expression("AVG(a) >= 3")
        assert classify(phi, NONNEG) is Monotonicity.UNKNOWN

    def test_aggregate_vs_aggregate_unknown(self):
        phi = parse_expression("SUM(a) >= COUNT(*)")
        assert classify(phi, NONNEG) is Monotonicity.UNKNOWN

    def test_non_boolean_unknown(self):
        assert classify(parse_expression("5"), NONNEG) is Monotonicity.UNKNOWN

    def test_equality_threshold_unknown(self):
        phi = parse_expression("COUNT(*) = 3")
        assert classify(phi, NONNEG) is Monotonicity.UNKNOWN


class TestCombineHelper:
    def test_both_identity(self):
        assert Monotonicity.BOTH.combine(Monotonicity.MONOTONE) is Monotonicity.MONOTONE
        assert Monotonicity.MONOTONE.combine(Monotonicity.BOTH) is Monotonicity.MONOTONE

    def test_flip(self):
        assert Monotonicity.MONOTONE.flip() is Monotonicity.ANTI_MONOTONE
        assert Monotonicity.UNKNOWN.flip() is Monotonicity.UNKNOWN
