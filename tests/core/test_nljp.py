"""Tests for the NLJP operator (Section 7)."""

import pytest

from repro.errors import OptimizationError
from repro.sql.parser import parse
from repro.engine import EngineConfig, execute
from repro.engine.operators import ExecutionContext
from repro.engine.planner import PlanEnv
from repro.core.iceberg import IcebergBlock
from repro.core.nljp import NLJPOperator
from repro.core.pruning import check_pruning


def build_nljp(db, sql, left, **kwargs):
    block = IcebergBlock(parse(sql).body, db)
    view = block.partition(left)
    env = PlanEnv(db=db, config=EngineConfig.smart())
    pruning = check_pruning(view)
    return NLJPOperator(view, env, pruning=pruning, **kwargs)


def run_nljp(nljp):
    ctx = ExecutionContext()
    rows = list(nljp.execute(ctx))
    return rows, ctx.stats


SKYBAND = (
    "SELECT L.id, COUNT(*) FROM object L, object R "
    "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
    "GROUP BY L.id HAVING COUNT(*) <= 5"
)


class TestDirectMode:
    def test_matches_baseline(self, object_db):
        nljp = build_nljp(object_db, SKYBAND, ["l"])
        assert nljp.direct_mode
        rows, _ = run_nljp(nljp)
        baseline = execute(object_db, SKYBAND, EngineConfig.postgres())
        assert sorted(rows) == sorted(baseline.rows)

    def test_pruning_reduces_inner_evaluations(self, object_db):
        with_pruning = build_nljp(object_db, SKYBAND, ["l"])
        without = build_nljp(
            object_db, SKYBAND, ["l"], enable_pruning=False
        )
        rows_with, stats_with = run_nljp(with_pruning)
        rows_without, stats_without = run_nljp(without)
        assert sorted(rows_with) == sorted(rows_without)
        assert stats_with.inner_evaluations < stats_without.inner_evaluations
        assert stats_with.pruned_bindings > 0

    def test_memo_hits_on_duplicate_bindings(self, object_db):
        # Duplicate (x, y) points exist in the fixture with high odds;
        # force some to be sure.
        table = object_db.table("object")
        table.insert((997, 3, 3))
        table.insert((998, 3, 3))
        table.insert((999, 3, 3))
        nljp = build_nljp(object_db, SKYBAND, ["l"], enable_pruning=False)
        _, stats = run_nljp(nljp)
        assert stats.cache_hits >= 2

    def test_memo_disabled_recomputes(self, object_db):
        table = object_db.table("object")
        table.insert((999, 3, 3))
        nljp = build_nljp(
            object_db, SKYBAND, ["l"], enable_memo=False, enable_pruning=False
        )
        _, stats = run_nljp(nljp)
        assert stats.cache_hits == 0
        assert stats.inner_evaluations == len(table)

    def test_empty_binding_not_pruned_under_anti_monotone(self, object_db):
        """A binding joining nothing satisfies COUNT<=k on the empty
        set, so it must never seed pruning (regression test for the
        Definition 5 G_R=∅ reduction)."""
        table = object_db.table("object")
        table.insert((1000, 31, 31))  # dominates nothing, dominated by nothing
        nljp = build_nljp(object_db, SKYBAND, ["l"])
        rows, _ = run_nljp(nljp)
        baseline = execute(object_db, SKYBAND, EngineConfig.postgres())
        assert sorted(rows) == sorted(baseline.rows)

    def test_cache_stats_exported(self, object_db):
        nljp = build_nljp(object_db, SKYBAND, ["l"])
        _, stats = run_nljp(nljp)
        assert stats.cache_rows > 0
        assert stats.cache_bytes > 0


class TestCombiningMode:
    SQL = (
        "SELECT i1.item, COUNT(*) FROM basket i1, basket i2 "
        "WHERE i1.bid = i2.bid AND i1.item < i2.item "
        "GROUP BY i1.item HAVING COUNT(*) >= 2"
    )

    def test_combining_mode_selected(self, basket_db):
        nljp = build_nljp(basket_db, self.SQL, ["i1"])
        assert not nljp.direct_mode

    def test_matches_baseline(self, basket_db):
        nljp = build_nljp(basket_db, self.SQL, ["i1"])
        rows, _ = run_nljp(nljp)
        baseline = execute(basket_db, self.SQL, EngineConfig.postgres())
        assert sorted(rows) == sorted(baseline.rows)

    def test_avg_combines_algebraically(self, score_db):
        sql = (
            "SELECT s1.teamid, AVG(s2.hits), COUNT(*) "
            "FROM score s1, score s2 "
            "WHERE s1.hits <= s2.hits "
            "GROUP BY s1.teamid HAVING COUNT(*) >= 2"
        )
        nljp = build_nljp(score_db, sql, ["s1"])
        assert not nljp.direct_mode
        rows, _ = run_nljp(nljp)
        baseline = execute(score_db, sql, EngineConfig.postgres())
        assert sorted(rows) == sorted(
            baseline.rows
        ), "algebraic AVG combination must equal direct evaluation"


class TestGroupedInner:
    SQL = (
        "SELECT L.id, R.x, COUNT(*) FROM object L, object R "
        "WHERE L.x <= R.x GROUP BY L.id, R.x HAVING COUNT(*) >= 10"
    )

    def test_nonempty_g_r_payload_per_group(self, object_db):
        nljp = build_nljp(object_db, self.SQL, ["l"])
        rows, _ = run_nljp(nljp)
        baseline = execute(object_db, self.SQL, EngineConfig.postgres())
        assert sorted(rows) == sorted(baseline.rows)


class TestValidation:
    def test_rejects_phi_on_outer(self, score_db):
        sql = (
            "SELECT s1.pid, COUNT(*) FROM score s1, score s2 "
            "WHERE s1.hits <= s2.hits GROUP BY s1.pid "
            "HAVING MAX(s1.hruns) >= 5"
        )
        with pytest.raises(OptimizationError):
            build_nljp(score_db, sql, ["s1"])

    def test_rejects_lambda_on_outer(self, score_db):
        sql = (
            "SELECT s1.pid, AVG(s1.hits), COUNT(*) FROM score s1, score s2 "
            "WHERE s1.hits <= s2.hits GROUP BY s1.pid "
            "HAVING COUNT(*) <= 5"
        )
        with pytest.raises(OptimizationError):
            build_nljp(score_db, sql, ["s1"])


class TestIntrospection:
    def test_sql_listing_contains_generated_queries(self, object_db):
        nljp = build_nljp(object_db, SKYBAND, ["l"])
        listing = nljp.sql_listing()
        assert "Q_B" in listing and "SELECT" in listing["Q_B"]
        assert "Q_R" in listing and ":b_" in listing["Q_R"]
        assert "Q_C" in listing and "unpromising" in listing["Q_C"]

    def test_describe_mentions_features(self, object_db):
        nljp = build_nljp(object_db, SKYBAND, ["l"])
        text = nljp.explain()
        assert "NLJP" in text and "pruning" in text and "memo" in text


class TestCachePolicies:
    def test_bounded_cache_still_correct(self, object_db):
        nljp = build_nljp(
            object_db, SKYBAND, ["l"], cache_max_entries=5, cache_policy="lru"
        )
        rows, _ = run_nljp(nljp)
        baseline = execute(object_db, SKYBAND, EngineConfig.postgres())
        assert sorted(rows) == sorted(baseline.rows)

    def test_utility_policy_still_correct(self, object_db):
        nljp = build_nljp(
            object_db, SKYBAND, ["l"], cache_max_entries=3, cache_policy="utility"
        )
        rows, _ = run_nljp(nljp)
        baseline = execute(object_db, SKYBAND, EngineConfig.postgres())
        assert sorted(rows) == sorted(baseline.rows)


class TestBindingOrder:
    def test_order_by_changes_exploration_not_results(self, object_db):
        from repro.sql import ast

        ordered = build_nljp(
            object_db,
            SKYBAND,
            ["l"],
            binding_order=(
                ast.OrderItem(ast.ColumnRef("l", "x"), ascending=True),
            ),
        )
        rows, _ = run_nljp(ordered)
        plain = build_nljp(object_db, SKYBAND, ["l"])
        rows_plain, _ = run_nljp(plain)
        assert sorted(rows) == sorted(rows_plain)
