"""Tests for the Appendix D optimization procedure."""

import pytest

from repro.sql import render
from repro.engine import EngineConfig, execute
from repro.core.optimizer import SmartIcebergOptimizer
from repro.workloads.queries import (
    complex_query,
    market_basket_query,
    pairs_query,
)


SKYBAND = (
    "SELECT L.id, COUNT(*) FROM object L, object R "
    "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
    "GROUP BY L.id HAVING COUNT(*) <= 5"
)


class TestSkyband:
    def test_apriori_recognized_as_trivial(self, object_db):
        """The paper: generalized a-priori does not apply to skybands."""
        optimized = SmartIcebergOptimizer(object_db).optimize(SKYBAND)
        assert not optimized.report.apriori
        assert any(
            "trivial" in reason for _, reason in optimized.report.apriori_rejected
        )

    def test_nljp_chosen_with_pruning_and_memo(self, object_db):
        optimized = SmartIcebergOptimizer(object_db).optimize(SKYBAND)
        assert optimized.nljp is not None
        assert optimized.report.pruning is not None
        assert optimized.report.pruning.applicable
        assert optimized.report.memoization is not None

    def test_results_match_baseline(self, object_db):
        optimized = SmartIcebergOptimizer(object_db).optimize(SKYBAND)
        baseline = execute(object_db, SKYBAND, EngineConfig.postgres())
        assert sorted(optimized.execute().rows) == sorted(baseline.rows)

    def test_explain_is_informative(self, object_db):
        optimized = SmartIcebergOptimizer(object_db).optimize(SKYBAND)
        text = optimized.explain()
        assert "NLJP" in text and "pruning" in text


class TestExample13Complex:
    """The Appendix D walk-through on the 4-way self-join."""

    @pytest.fixture
    def sql(self):
        return complex_query(threshold=5, table="product")

    def test_both_reducers_found(self, product_db, sql):
        optimized = SmartIcebergOptimizer(product_db).optimize(sql)
        targets = sorted(
            reducer.target_aliases[0]
            for _, reducer, _ in optimized.report.apriori
        )
        assert targets == ["s1", "s2"]

    def test_s1_reducer_matches_paper(self, product_db, sql):
        optimized = SmartIcebergOptimizer(product_db).optimize(sql)
        reducer = next(
            r for _, r, _ in optimized.report.apriori
            if r.target_aliases == ("s1",)
        )
        text = render(reducer.query)
        assert "s1.category = t1.category" in text
        assert "t1.attr = s1.attr" in text
        assert "t1.val > s1.val" in text
        assert "HAVING COUNT(*) >= 5" in text

    def test_s2_reducer_uses_inferred_equalities(self, product_db, sql):
        """The paper: S2's reducer needs s2.category = t2.category,
        inferred from id -> category and the id equalities; and S1.id
        replaced by S2.id in the grouping."""
        optimized = SmartIcebergOptimizer(product_db).optimize(sql)
        reducer = next(
            r for _, r, _ in optimized.report.apriori
            if r.target_aliases == ("s2",)
        )
        text = render(reducer.query)
        assert "s2.category = t2.category" in text
        assert "s2.id" in text  # grouped by the substituted key

    def test_nljp_on_s1_s2_composed_with_reducers(self, product_db, sql):
        """Listing 11: both reducers and the NLJP apply together —
        the combination the paper's implementation could not yet do."""
        optimized = SmartIcebergOptimizer(product_db).optimize(sql)
        assert optimized.report.nljp_partition == ("s1", "s2")
        assert optimized.report.pruning.applicable
        assert len(optimized.report.apriori) == 2
        # Q_B carries the reducers' IN filters.
        q_b = render(optimized.nljp.qb_select)
        assert "IN (SELECT" in q_b

    def test_results_match_baseline(self, product_db, sql):
        optimized = SmartIcebergOptimizer(product_db).optimize(sql)
        baseline = execute(product_db, sql, EngineConfig.postgres())
        result = optimized.execute()
        assert sorted(result.rows) == sorted(baseline.rows)
        assert len(result.rows) > 0


class TestPairsTwoBlocks:
    def test_with_block_gets_apriori_main_gets_nljp(self, score_db):
        sql = pairs_query(
            c=2, k=10, table="score", attr_a="hits", attr_b="hruns"
        )
        sql = sql.replace("s1.playerid", "s1.pid").replace("s2.playerid", "s2.pid")
        optimized = SmartIcebergOptimizer(score_db).optimize(sql)
        scopes = {scope for scope, _, _ in optimized.report.apriori}
        assert "with:pair" in scopes
        assert optimized.nljp is not None
        baseline = execute(score_db, sql, EngineConfig.postgres())
        assert sorted(optimized.execute().rows) == sorted(baseline.rows)


class TestToggles:
    def test_apriori_disabled(self, product_db):
        sql = complex_query(threshold=5, table="product")
        optimized = SmartIcebergOptimizer(
            product_db, enable_apriori=False
        ).optimize(sql)
        assert not optimized.report.apriori
        baseline = execute(product_db, sql, EngineConfig.postgres())
        assert sorted(optimized.execute().rows) == sorted(baseline.rows)

    def test_all_disabled_still_correct(self, object_db):
        optimized = SmartIcebergOptimizer(
            object_db,
            enable_apriori=False,
            enable_pruning=False,
            enable_memo=False,
        ).optimize(SKYBAND)
        assert optimized.nljp is None
        baseline = execute(object_db, SKYBAND, EngineConfig.postgres())
        assert sorted(optimized.execute().rows) == sorted(baseline.rows)

    def test_pruning_only(self, object_db):
        optimized = SmartIcebergOptimizer(
            object_db, enable_apriori=False, enable_memo=False
        ).optimize(SKYBAND)
        result = optimized.execute()
        assert result.stats.pruned_bindings > 0
        assert result.stats.cache_hits == 0


class TestNonIcebergQueries:
    def test_plain_query_passes_through(self, object_db):
        sql = "SELECT id, x FROM object WHERE x > 10 ORDER BY id LIMIT 5"
        optimized = SmartIcebergOptimizer(object_db).optimize(sql)
        assert optimized.nljp is None
        baseline = execute(object_db, sql, EngineConfig.postgres())
        assert optimized.execute().rows == baseline.rows

    def test_group_without_join_passes_through(self, object_db):
        sql = (
            "SELECT x, COUNT(*) FROM object GROUP BY x HAVING COUNT(*) >= 2"
        )
        optimized = SmartIcebergOptimizer(object_db).optimize(sql)
        baseline = execute(object_db, sql, EngineConfig.postgres())
        assert sorted(optimized.execute().rows) == sorted(baseline.rows)

    def test_order_by_and_limit_preserved_with_nljp(self, object_db):
        sql = SKYBAND + " ORDER BY count DESC LIMIT 3"
        # ORDER BY on the output name of COUNT(*).
        optimized = SmartIcebergOptimizer(object_db).optimize(sql)
        result = optimized.execute()
        baseline = execute(object_db, sql, EngineConfig.postgres())
        assert len(result.rows) == len(baseline.rows) <= 3
        assert [r[1] for r in result.rows] == [r[1] for r in baseline.rows]


class TestMarketBasket:
    def test_reducers_on_both_instances(self, basket_db):
        sql = market_basket_query(support=2)
        optimized = SmartIcebergOptimizer(basket_db).optimize(sql)
        targets = sorted(
            reducer.target_aliases[0]
            for _, reducer, _ in optimized.report.apriori
        )
        assert targets == ["i1", "i2"]
        baseline = execute(basket_db, sql, EngineConfig.postgres())
        assert sorted(optimized.execute().rows) == sorted(baseline.rows)
