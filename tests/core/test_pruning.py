"""Tests for Theorem 3's safe-pruning conditions."""


from repro.sql.parser import parse
from repro.core.iceberg import IcebergBlock
from repro.core.pruning import PruneDirection, check_pruning


def view_for(db, sql, left):
    return IcebergBlock(parse(sql).body, db).partition(left)


SKYBAND = (
    "SELECT L.id, COUNT(*) FROM object L, object R "
    "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
    "GROUP BY L.id HAVING COUNT(*) <= 5"
)


class TestExample9Skyband:
    def test_anti_monotone_pruning_applies(self, object_db):
        decision = check_pruning(view_for(object_db, SKYBAND, ["l"]))
        assert decision.applicable
        assert decision.direction is PruneDirection.NEW_SUBSUMES_CACHED
        assert decision.predicate is not None

    def test_should_prune_direction(self, object_db):
        decision = check_pruning(view_for(object_db, SKYBAND, ["l"]))
        # new (1,1) joins a superset of cached (5,5): prune.
        assert decision.should_prune((1, 1), (5, 5))
        assert not decision.should_prune((5, 5), (1, 1))


class TestMonotoneDirection:
    SQL = (
        "SELECT L.id, COUNT(*) FROM object L, object R "
        "WHERE L.x <= R.x AND L.y <= R.y "
        "GROUP BY L.id HAVING COUNT(*) >= 5"
    )

    def test_monotone_pruning_applies(self, object_db):
        decision = check_pruning(view_for(object_db, self.SQL, ["l"]))
        assert decision.applicable
        assert decision.direction is PruneDirection.NEW_SUBSUMED_BY_CACHED

    def test_should_prune_direction(self, object_db):
        decision = check_pruning(view_for(object_db, self.SQL, ["l"]))
        # new (5,5) joins a subset of cached (1,1): prune.
        assert decision.should_prune((5, 5), (1, 1))
        assert not decision.should_prune((1, 1), (5, 5))


class TestRefusals:
    def test_superkey_required(self, object_db):
        # Group by x (not a key of object): refuse.
        sql = (
            "SELECT L.x, COUNT(*) FROM object L, object R "
            "WHERE L.y <= R.y GROUP BY L.x HAVING COUNT(*) <= 5"
        )
        decision = check_pruning(view_for(object_db, sql, ["l"]))
        assert not decision.applicable
        assert "superkey" in decision.reason

    def test_anti_monotone_needs_empty_g_r(self, object_db):
        # G_L = {L.id} is a superkey, but G_R = {R.x} is nonempty:
        # the anti-monotone case of Theorem 3 must refuse.
        sql = (
            "SELECT L.id, R.x, COUNT(*) FROM object L, object R "
            "WHERE L.x <= R.x GROUP BY L.id, R.x HAVING COUNT(*) <= 3"
        )
        decision = check_pruning(view_for(object_db, sql, ["l"]))
        assert not decision.applicable
        assert "G_R" in decision.reason

    def test_phi_must_be_applicable_to_inner(self, score_db):
        sql = (
            "SELECT s1.pid, COUNT(*) FROM score s1, score s2 "
            "WHERE s1.hits <= s2.hits GROUP BY s1.pid "
            "HAVING MAX(s1.hruns) >= 5"
        )
        decision = check_pruning(view_for(score_db, sql, ["s1"]))
        assert not decision.applicable
        assert "inner" in decision.reason

    def test_unknown_monotonicity_refused(self, score_db):
        sql = (
            "SELECT s1.pid, COUNT(*) FROM score s1, score s2 "
            "WHERE s1.hits <= s2.hits GROUP BY s1.pid "
            "HAVING AVG(s2.hits) >= 5"
        )
        decision = check_pruning(view_for(score_db, sql, ["s1"]))
        assert not decision.applicable

    def test_nonlinear_theta_disables_gracefully(self, object_db):
        sql = (
            "SELECT L.id, COUNT(*) FROM object L, object R "
            "WHERE L.x * L.y <= R.x GROUP BY L.id HAVING COUNT(*) <= 5"
        )
        decision = check_pruning(view_for(object_db, sql, ["l"]))
        assert not decision.applicable
        assert "derivation failed" in decision.reason


class TestMonotoneWithGroupedInner:
    def test_monotone_allows_nonempty_g_r(self, basket_db):
        """Theorem 3's monotone case has no G_R restriction."""
        sql = (
            "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 "
            "WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item "
            "HAVING COUNT(*) >= 3"
        )
        # G_L = {i1.item} must be a superkey of basket: it is not,
        # so pruning is refused for that reason (not because of G_R).
        decision = check_pruning(view_for(basket_db, sql, ["i1"]))
        assert not decision.applicable
        assert "superkey" in decision.reason
