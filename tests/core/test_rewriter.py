"""Tests for the static memoization rewrite (Appendix C, Listing 8)."""

import pytest

from repro.errors import OptimizationError
from repro.sql import render
from repro.sql.parser import parse
from repro.engine import EngineConfig, execute
from repro.core.iceberg import IcebergBlock
from repro.core.rewriter import memoization_rewrite


def rewrite(db, sql, left):
    view = IcebergBlock(parse(sql).body, db).partition(left)
    return memoization_rewrite(view)


SKYBAND = (
    "SELECT L.id, COUNT(*) FROM object L, object R "
    "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
    "GROUP BY L.id HAVING COUNT(*) <= 5"
)


class TestDirectForm:
    """Listing 8's first query: G_L -> A_L holds."""

    def test_structure(self, object_db):
        query = rewrite(object_db, SKYBAND, ["l"])
        names = [cte.name for cte in query.ctes]
        assert names == ["ljt", "ljr"]
        assert query.ctes[0].query.distinct  # SELECT DISTINCT J_L
        # In the direct form, Φ moves into LJR.
        assert query.ctes[1].query.having is not None
        assert query.body.having is None

    def test_equivalence(self, object_db):
        query = rewrite(object_db, SKYBAND, ["l"])
        original = execute(object_db, SKYBAND, EngineConfig.postgres())
        rewritten = execute(object_db, query, EngineConfig.postgres())
        assert sorted(original.rows) == sorted(rewritten.rows)

    def test_equivalence_with_duplicates(self, object_db):
        # Duplicate join-attribute values are where memoization matters.
        table = object_db.table("object")
        table.insert((900, 3, 3))
        table.insert((901, 3, 3))
        query = rewrite(object_db, SKYBAND, ["l"])
        original = execute(object_db, SKYBAND, EngineConfig.postgres())
        rewritten = execute(object_db, query, EngineConfig.postgres())
        assert sorted(original.rows) == sorted(rewritten.rows)


class TestGeneralForm:
    """Listing 8's second query: partial aggregates combined outside."""

    SQL = (
        "SELECT i1.item, COUNT(*), AVG(i2.bid) FROM basket i1, basket i2 "
        "WHERE i1.bid = i2.bid AND i1.item < i2.item "
        "GROUP BY i1.item HAVING COUNT(*) >= 2"
    )

    def test_structure(self, basket_db):
        query = rewrite(basket_db, self.SQL, ["i1"])
        # General form keeps Φ on the outer query (over f^o results).
        assert query.body.having is not None
        text = render(query)
        assert "ljt" in text and "ljr" in text

    def test_equivalence(self, basket_db):
        query = rewrite(basket_db, self.SQL, ["i1"])
        original = execute(basket_db, self.SQL, EngineConfig.postgres())
        rewritten = execute(basket_db, query, EngineConfig.postgres())
        assert sorted(original.rows) == sorted(rewritten.rows)
        assert len(original.rows) > 0

    def test_avg_decomposed_into_sum_count(self, basket_db):
        query = rewrite(basket_db, self.SQL, ["i1"])
        ljr_text = render(query.ctes[1].query)
        assert "SUM" in ljr_text and "COUNT" in ljr_text


class TestGroupedInnerForm:
    SQL = (
        "SELECT L.id, R.x, COUNT(*) FROM object L, object R "
        "WHERE L.x <= R.x GROUP BY L.id, R.x HAVING COUNT(*) >= 10"
    )

    def test_g_r_nonempty_supported(self, object_db):
        """Appendix C notes the rewrite does not assume G_R = ∅."""
        query = rewrite(object_db, self.SQL, ["l"])
        original = execute(object_db, self.SQL, EngineConfig.postgres())
        rewritten = execute(object_db, query, EngineConfig.postgres())
        assert sorted(original.rows) == sorted(rewritten.rows)


class TestRefusals:
    def test_phi_on_outer_rejected(self, score_db):
        sql = (
            "SELECT s1.pid, COUNT(*) FROM score s1, score s2 "
            "WHERE s1.hits <= s2.hits GROUP BY s1.pid "
            "HAVING MAX(s1.hruns) >= 5"
        )
        with pytest.raises(OptimizationError):
            rewrite(score_db, sql, ["s1"])

    def test_non_algebraic_without_superkey_rejected(self, basket_db):
        sql = (
            "SELECT i1.item, COUNT(DISTINCT i2.bid) FROM basket i1, basket i2 "
            "WHERE i1.bid = i2.bid GROUP BY i1.item "
            "HAVING COUNT(DISTINCT i2.bid) >= 2"
        )
        with pytest.raises(OptimizationError):
            rewrite(basket_db, sql, ["i1"])
