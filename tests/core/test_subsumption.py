"""Tests for automatic subsumption-test generation (Section 5.2, App B)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QuantifierEliminationError
from repro.sql import ast, render
from repro.sql.parser import parse_expression
from repro.core.subsumption import derive_subsumption, expr_to_formula
from repro.logic import formula as fm


def conjuncts(*sql: str):
    return [parse_expression(s) for s in sql]


class TestExample10And11:
    """The k-skyband derivations, simplified and full forms."""

    def test_simplified_condition(self):
        predicate = derive_subsumption(
            conjuncts("L.x < R.x", "L.y < R.y"),
            ["l.x", "l.y"],
            ["r.x", "r.y"],
        )
        # p((x,y),(x',y')) == x <= x' AND y <= y'.
        assert predicate.holds((1, 1), (2, 2))
        assert predicate.holds((2, 2), (2, 2))
        assert not predicate.holds((3, 1), (2, 2))
        assert not predicate.holds((1, 3), (2, 2))

    def test_full_strict_dominance_condition(self):
        """Appendix B: the longer derivation reaches the same p."""
        predicate = derive_subsumption(
            conjuncts(
                "L.x <= R.x", "L.y <= R.y", "L.x < R.x OR L.y < R.y"
            ),
            ["l.x", "l.y"],
            ["r.x", "r.y"],
        )
        simplified = derive_subsumption(
            conjuncts("L.x < R.x", "L.y < R.y"),
            ["l.x", "l.y"],
            ["r.x", "r.y"],
        )
        rng = random.Random(3)
        for _ in range(200):
            w = (rng.randint(0, 5), rng.randint(0, 5))
            w_prime = (rng.randint(0, 5), rng.randint(0, 5))
            assert predicate.holds(w, w_prime) == simplified.holds(w, w_prime)


class TestSemanticCorrectness:
    """Property: derived p⪰(w, w') implies R⋉w ⊇ R⋉w' on random data."""

    CASES = [
        (
            conjuncts("L.x <= R.x", "L.y <= R.y", "L.x < R.x OR L.y < R.y"),
            ["l.x", "l.y"],
            ["r.x", "r.y"],
            2,
        ),
        (
            conjuncts("L.x < R.x", "L.y < R.y"),
            ["l.x", "l.y"],
            ["r.x", "r.y"],
            2,
        ),
        (
            conjuncts("L.a = R.a", "L.v < R.v"),
            ["l.a", "l.v"],
            ["r.a", "r.v"],
            2,
        ),
        (
            conjuncts("L.x + L.y <= R.x", "L.y >= R.y"),
            ["l.x", "l.y"],
            ["r.x", "r.y"],
            2,
        ),
    ]

    @pytest.mark.parametrize("theta,j_left,j_right,width", CASES)
    def test_soundness_on_samples(self, theta, j_left, j_right, width):
        predicate = derive_subsumption(theta, j_left, j_right)
        rng = random.Random(11)
        r_tuples = [
            tuple(rng.randint(0, 4) for _ in range(width)) for _ in range(40)
        ]

        def joins(w, r):
            assignment = {}
            for name, value in zip(j_left, w):
                assignment[name] = value
            for name, value in zip(j_right, r):
                assignment[name] = value
            formula = expr_to_formula(
                ast.conjoin(tuple(theta)),
                {name: name for name in list(j_left) + list(j_right)},
            )
            return fm.evaluate(formula, assignment)

        for _ in range(120):
            w = tuple(rng.randint(0, 4) for _ in range(width))
            w_prime = tuple(rng.randint(0, 4) for _ in range(width))
            if predicate.holds(w, w_prime):
                joins_w = {r for r in r_tuples if joins(w, r)}
                joins_w_prime = {r for r in r_tuples if joins(w_prime, r)}
                assert joins_w >= joins_w_prime, (w, w_prime)

    def test_equality_only_text_attributes(self):
        predicate = derive_subsumption(
            conjuncts("L.cat = R.cat", "L.v <= R.v"),
            ["l.cat", "l.v"],
            ["r.cat", "r.v"],
        )
        assert predicate.holds(("a", 1), ("a", 2))
        assert not predicate.holds(("a", 1), ("b", 2))
        assert not predicate.holds(("a", 3), ("a", 2))


class TestListing10Complex:
    THETA = conjuncts(
        "s1.category = t1.category",
        "t1.attr = s1.attr",
        "t2.attr = s2.attr",
        "t1.val > s1.val",
        "t2.val > s2.val",
    )
    J_LEFT = ["s1.category", "s1.attr", "s2.attr", "s1.val", "s2.val"]
    J_RIGHT = ["t1.category", "t1.attr", "t2.attr", "t1.val", "t2.val"]

    def test_equality_attributes_detected(self):
        predicate = derive_subsumption(self.THETA, self.J_LEFT, self.J_RIGHT)
        equal_positions = predicate.equality_attributes()
        names = {predicate.attributes[i] for i in equal_positions}
        assert names == {"s1.category", "s1.attr", "s2.attr"}

    def test_direction_matches_listing_10(self):
        """Q_C of Listing 10: same category/attrs, cached vals <= new."""
        predicate = derive_subsumption(self.THETA, self.J_LEFT, self.J_RIGHT)
        assert predicate.holds(("c", "a", "b", 1.0, 1.0), ("c", "a", "b", 5.0, 5.0))
        assert not predicate.holds(
            ("c", "a", "b", 5.0, 5.0), ("c", "a", "b", 1.0, 1.0)
        )

    def test_sql_rendering_uses_bindings(self):
        predicate = derive_subsumption(self.THETA, self.J_LEFT, self.J_RIGHT)
        sql = predicate.to_sql(
            lambda i: ast.Parameter(f"b{i}"),
            lambda i: ast.ColumnRef("c", predicate.attributes[i].replace(".", "_")),
        )
        text = render(sql)
        assert ":b" in text and "c.s1_val" in text


class TestOrderedAttribute:
    def test_skyband_has_ordered_attribute(self):
        predicate = derive_subsumption(
            conjuncts("L.x <= R.x", "L.y <= R.y"),
            ["l.x", "l.y"],
            ["r.x", "r.y"],
        )
        ordered = predicate.ordered_attribute()
        assert ordered is not None
        _, op = ordered
        assert op in ("<", "<=")

    def test_pure_equality_has_no_ordered_attribute(self):
        predicate = derive_subsumption(
            conjuncts("L.a = R.a"), ["l.a"], ["r.a"]
        )
        assert predicate.ordered_attribute() is None


class TestUnsupportedConditions:
    def test_nonlinear_raises(self):
        with pytest.raises(QuantifierEliminationError):
            derive_subsumption(
                conjuncts("L.x * L.y < R.x"), ["l.x", "l.y"], ["r.x"]
            )

    def test_unknown_function_raises(self):
        with pytest.raises(QuantifierEliminationError):
            derive_subsumption(
                conjuncts("ABS(L.x) < R.x"), ["l.x"], ["r.x"]
            )

    def test_empty_theta_raises(self):
        with pytest.raises(QuantifierEliminationError):
            derive_subsumption([], ["l.x"], ["r.x"])

    def test_division_by_constant_ok(self):
        predicate = derive_subsumption(
            conjuncts("L.x / 2 <= R.x"), ["l.x"], ["r.x"]
        )
        assert predicate.holds((2,), (4,))

    def test_in_subquery_raises(self):
        with pytest.raises(QuantifierEliminationError):
            derive_subsumption(
                conjuncts("L.x IN (SELECT y FROM t)"), ["l.x"], ["r.x"]
            )


class TestReflexivityProperty:
    @given(st.lists(st.integers(0, 9), min_size=2, max_size=2))
    @settings(max_examples=30, deadline=None)
    def test_reflexive(self, values):
        """w always subsumes itself (R⋉w ⊇ R⋉w)."""
        predicate = derive_subsumption(
            conjuncts("L.x <= R.x", "L.y <= R.y"),
            ["l.x", "l.y"],
            ["r.x", "r.y"],
        )
        w = tuple(values)
        assert predicate.holds(w, w)
