"""Tests for the SmartIceberg facade."""

import pytest

from repro import EngineConfig, SmartIceberg
from repro.engine import execute


SKYBAND = (
    "SELECT L.id, COUNT(*) FROM object L, object R "
    "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
    "GROUP BY L.id HAVING COUNT(*) <= 5"
)


class TestFacade:
    def test_execute_matches_baseline(self, object_db):
        system = SmartIceberg(object_db)
        result = system.execute(SKYBAND)
        baseline = system.execute_baseline(SKYBAND)
        assert sorted(result.rows) == sorted(baseline.rows)

    def test_optimize_returns_inspectable(self, object_db):
        optimized = SmartIceberg(object_db).optimize(SKYBAND)
        assert optimized.nljp is not None
        assert "NLJP" in optimized.explain()
        assert "SELECT" in optimized.rewritten_sql()

    def test_explain_shortcut(self, object_db):
        assert "pruning" in SmartIceberg(object_db).explain(SKYBAND)

    def test_baseline_config_override(self, object_db):
        system = SmartIceberg(object_db)
        result = system.execute_baseline(SKYBAND, EngineConfig.vendor())
        assert sorted(result.rows) == sorted(system.execute(SKYBAND).rows)


class TestFigure1Configurations:
    """The four Smart-Iceberg configurations of Figure 1."""

    @pytest.mark.parametrize(
        "toggles",
        [
            {},
            dict(apriori=False, memo=False),      # pruning only
            dict(apriori=False, pruning=False),   # memo only
            dict(memo=False, pruning=False),      # apriori only
        ],
    )
    def test_each_configuration_correct(self, object_db, toggles):
        system = SmartIceberg(object_db, **toggles)
        baseline = execute(object_db, SKYBAND, EngineConfig.postgres())
        assert sorted(system.execute(SKYBAND).rows) == sorted(baseline.rows)

    def test_all_techniques_use_least_work(self, object_db):
        baseline = execute(object_db, SKYBAND, EngineConfig.postgres())
        all_on = SmartIceberg(object_db).execute(SKYBAND)
        assert all_on.stats.cost() < baseline.stats.cost()


class TestBindingOrder:
    def test_auto_order_correct_and_not_worse(self, object_db):
        baseline = execute(object_db, SKYBAND, EngineConfig.postgres())
        default = SmartIceberg(object_db, apriori=False).execute(SKYBAND)
        auto = SmartIceberg(
            object_db, apriori=False, binding_order="auto"
        ).execute(SKYBAND)
        assert sorted(auto.rows) == sorted(default.rows) == sorted(baseline.rows)
        assert auto.stats.inner_evaluations <= default.stats.inner_evaluations

    def test_invalid_order_rejected(self, object_db):
        from repro.errors import OptimizationError

        with pytest.raises(OptimizationError):
            SmartIceberg(object_db, binding_order="chaotic")


class TestCacheOptions:
    def test_bounded_cache(self, object_db):
        system = SmartIceberg(
            object_db, cache_max_entries=4, cache_policy="lru"
        )
        baseline = execute(object_db, SKYBAND, EngineConfig.postgres())
        assert sorted(system.execute(SKYBAND).rows) == sorted(baseline.rows)

    def test_cache_index_toggle(self, object_db):
        with_index = SmartIceberg(object_db, cache_index=True).execute(SKYBAND)
        without = SmartIceberg(object_db, cache_index=False).execute(SKYBAND)
        assert sorted(with_index.rows) == sorted(without.rows)
        assert with_index.stats.prune_checks <= without.stats.prune_checks
