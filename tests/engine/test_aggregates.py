"""Tests for aggregate accumulators and algebraic decomposition."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PlanningError
from repro.sql import ast
from repro.sql.parser import parse_expression
from repro.engine.aggregates import (
    algebraic_form,
    is_algebraic,
    make_spec,
)


def call(sql: str) -> ast.FuncCall:
    expr = parse_expression(sql)
    assert isinstance(expr, ast.FuncCall)
    return expr


def run(sql: str, values):
    spec = make_spec(call(sql), argument=lambda row, params: row[0])
    accumulator = spec.new()
    for value in values:
        accumulator.add(value)
    return accumulator.result()


class TestAccumulators:
    def test_count_star(self):
        spec = make_spec(call("COUNT(*)"), None)
        accumulator = spec.new()
        for _ in range(3):
            accumulator.add(1)
        assert accumulator.result() == 3

    def test_count_skips_nulls(self):
        assert run("COUNT(a)", [1, None, 2]) == 2

    def test_count_distinct(self):
        assert run("COUNT(DISTINCT a)", [1, 1, 2, None, 2]) == 2

    def test_sum(self):
        assert run("SUM(a)", [1, 2, None, 3]) == 6

    def test_sum_empty_is_null(self):
        assert run("SUM(a)", []) is None
        assert run("SUM(a)", [None]) is None

    def test_sum_distinct(self):
        assert run("SUM(DISTINCT a)", [2, 2, 3]) == 5

    def test_avg(self):
        assert run("AVG(a)", [1, 2, None, 3]) == 2.0

    def test_avg_empty_is_null(self):
        assert run("AVG(a)", [None]) is None

    def test_avg_distinct(self):
        assert run("AVG(DISTINCT a)", [2, 2, 4]) == 3.0

    def test_min_max(self):
        assert run("MIN(a)", [3, 1, None, 2]) == 1
        assert run("MAX(a)", [3, 1, None, 2]) == 3
        assert run("MIN(a)", []) is None
        assert run("MAX(a)", [None]) is None

    def test_unknown_aggregate(self):
        with pytest.raises(PlanningError):
            make_spec(ast.FuncCall("MEDIAN", (ast.ColumnRef(None, "a"),)), None)

    def test_wrong_arity(self):
        with pytest.raises(PlanningError):
            make_spec(
                ast.FuncCall(
                    "SUM", (ast.ColumnRef(None, "a"), ast.ColumnRef(None, "b"))
                ),
                None,
            )


class TestAlgebraic:
    def test_classification(self):
        assert is_algebraic(call("COUNT(*)"))
        assert is_algebraic(call("SUM(a)"))
        assert is_algebraic(call("AVG(a)"))
        assert is_algebraic(call("MIN(a)"))
        assert is_algebraic(call("MAX(a)"))
        assert not is_algebraic(call("COUNT(DISTINCT a)"))
        assert not is_algebraic(call("SUM(DISTINCT a)"))

    def test_non_algebraic_has_no_form(self):
        with pytest.raises(PlanningError):
            algebraic_form(call("COUNT(DISTINCT a)"))

    @pytest.mark.parametrize(
        "sql",
        ["COUNT(*)", "COUNT(a)", "SUM(a)", "MIN(a)", "MAX(a)", "AVG(a)"],
    )
    def test_partition_invariance_on_example(self, sql):
        """f(S) == f_outer(f_inner applied per partition)."""
        form = algebraic_form(call(sql))
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        whole = form.finalize(form.partial(values))
        split = form.finalize(
            form.combine([form.partial(values[:3]), form.partial(values[3:])])
        )
        assert whole == split

    @given(
        st.lists(st.integers(min_value=-20, max_value=20), min_size=1, max_size=20),
        st.integers(min_value=0, max_value=20),
    )
    def test_partition_invariance_property(self, values, cut):
        """Property: any 2-way split combines to the whole, per aggregate."""
        cut = min(cut, len(values))
        left, right = values[:cut], values[cut:]
        for sql in ("COUNT(*)", "COUNT(a)", "SUM(a)", "MIN(a)", "MAX(a)", "AVG(a)"):
            form = algebraic_form(call(sql))
            whole = form.finalize(form.partial(values))
            split = form.finalize(
                form.combine([form.partial(left), form.partial(right)])
            )
            assert whole == split, sql

    def test_combine_with_nulls(self):
        form = algebraic_form(call("SUM(a)"))
        assert form.combine([None, 5, None]) == 5
        assert form.combine([None, None]) is None
        min_form = algebraic_form(call("MIN(a)"))
        assert min_form.combine([None, 3]) == 3
