"""Differential tests: batch (vectorized) mode vs. row mode.

The vectorized engine's contract is strict: for every query, on every
system configuration, batch mode must produce *identical result rows*
and *identical deterministic work counters* (`ExecutionStats`) — the
paper's shape claims are asserted on those counters, so vectorization
may only change wall-clock, never work.

This suite runs every workload query (Q1-Q8, L1-L4, Ex. 7) plus
randomized property-based queries in both modes and asserts exactly
that.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import EngineConfig, SmartIceberg
from repro.engine import execute
from repro.storage import Database, SqlType, TableSchema
from repro.workloads import (
    BaseballConfig,
    BasketConfig,
    complex_query,
    discount_query,
    figure1_queries,
    load_baskets,
    load_discount_schema,
    make_batting_db,
    market_basket_query,
    pairs_query,
    skyband_query,
)
from repro.workloads.baseball import load_unpivoted


BATTING = make_batting_db(BaseballConfig(n_rows=400, seed=21))

BASELINE_CONFIGS = (
    EngineConfig.postgres(),
    EngineConfig.vendor(),
    EngineConfig(join_policy="nlj-only", label="nlj-only"),
)

SMART_CONFIGS = {
    "all": {},
    "pruning": dict(apriori=False, memo=False),
    "memo": dict(apriori=False, pruning=False),
    "apriori": dict(memo=False, pruning=False),
}


def assert_modes_agree(db, sql, batch_size=None):
    """Row and batch execution agree on rows AND on every counter."""
    for config in BASELINE_CONFIGS:
        row = execute(db, sql, config)
        batch_config = dataclasses.replace(
            config, execution_mode="batch", batch_size=batch_size
        )
        batch = execute(db, sql, batch_config)
        assert batch.execution_mode == "batch"
        assert batch.rows == row.rows, f"{config.label}: result rows differ"
        assert batch.stats.as_dict() == row.stats.as_dict(), (
            f"{config.label}: counters differ"
        )
    for label, toggles in SMART_CONFIGS.items():
        row = SmartIceberg(db, **toggles).execute(sql)
        batch = SmartIceberg(
            db, execution_mode="batch", batch_size=batch_size, **toggles
        ).execute(sql)
        assert batch.execution_mode == "batch"
        assert batch.rows == row.rows, f"smart[{label}]: result rows differ"
        assert batch.stats.as_dict() == row.stats.as_dict(), (
            f"smart[{label}]: counters differ"
        )


class TestFigure1Queries:
    @pytest.mark.parametrize("name", [f"Q{i}" for i in range(1, 9)])
    def test_mode_parity(self, name):
        query = figure1_queries()[name]
        assert_modes_agree(BATTING, query.sql)

    @pytest.mark.parametrize("name", ["Q1", "Q4", "Q7"])
    def test_governed_execution_is_bit_identical(self, name):
        """A governor whose budgets never trip must not change a thing:
        same rows, same value for EVERY ExecutionStats counter, in both
        modes — the governor's zero-overhead contract."""
        from repro import CancelToken

        sql = figure1_queries()[name].sql
        governor_knobs = dict(
            max_rows_scanned=10**12,
            max_join_pairs=10**12,
            max_cache_bytes=10**12,
            deadline_seconds=3600.0,
            cancel_token=CancelToken(),
            degradation="fallback",
        )
        for mode in ("row", "batch"):
            plain = SmartIceberg(BATTING, execution_mode=mode).execute(sql)
            governed = SmartIceberg(
                BATTING, execution_mode=mode, **governor_knobs
            ).execute(sql)
            assert governed.rows == plain.rows, f"{mode}: rows differ"
            assert governed.stats.as_dict() == plain.stats.as_dict(), (
                f"{mode}: counters differ"
            )
            assert governed.stats.degradations == []
        ungoverned_config = EngineConfig.postgres()
        governed_config = dataclasses.replace(
            ungoverned_config,
            max_rows_scanned=10**12,
            cancel_token=CancelToken(),
        )
        plain = execute(BATTING, sql, ungoverned_config)
        governed = execute(BATTING, sql, governed_config)
        assert governed.rows == plain.rows
        assert governed.stats.as_dict() == plain.stats.as_dict()


class TestWorkloadQueries:
    def test_l2_skyband(self):
        assert_modes_agree(BATTING, skyband_query("b_h", "b_hr", 10))

    def test_l4_pairs(self):
        assert_modes_agree(BATTING, pairs_query(540))

    def test_l3_complex(self):
        db = Database()
        load_unpivoted(db, BaseballConfig(n_rows=400, seed=21), n_categories=4)
        assert_modes_agree(db, complex_query(10))

    def test_l1_market_basket(self):
        db = Database()
        load_baskets(db, BasketConfig(n_baskets=200, n_items=60, seed=13))
        assert_modes_agree(db, market_basket_query(support=5))

    def test_example7_discount(self):
        db = Database()
        load_discount_schema(db, n_baskets=100, n_items=15, n_discounts=5)
        assert_modes_agree(db, discount_query(threshold=3))

    @pytest.mark.parametrize("batch_size", [1, 7, 64])
    def test_odd_batch_sizes(self, batch_size):
        """Chunk size must never affect results or counters."""
        query = figure1_queries()["Q1"]
        assert_modes_agree(BATTING, query.sql, batch_size=batch_size)


# ---------------------------------------------------------------------------
# Property-based parity on randomized iceberg queries
# ---------------------------------------------------------------------------

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),   # g: group attribute
        st.integers(min_value=0, max_value=4),   # j1
        st.integers(min_value=0, max_value=4),   # j2
        st.integers(min_value=0, max_value=9),   # v: value attribute
    ),
    min_size=1,
    max_size=24,
)

JOIN_CONJUNCTS = [
    "L.j1 = R.j1",
    "L.j1 <= R.j1",
    "L.j2 < R.j2",
    "L.j1 <= R.j1 AND L.j2 <= R.j2",
    "L.j1 = R.j1 AND L.j2 < R.j2",
    "L.j1 + L.j2 <= R.j1",
]

HAVINGS = [
    "COUNT(*) >= {c}",
    "COUNT(*) <= {c}",
    "SUM(R.v) >= {c}",
    "SUM(R.v) <= {c}",
    "MAX(R.v) >= {c}",
    "MIN(R.v) <= {c}",
    "COUNT(DISTINCT R.v) >= {c}",
]

GROUPINGS = [
    ("L.id", "L.id"),
    ("L.g", "L.g"),
    ("L.id, R.g", "L.id, R.g"),
    ("L.g, R.g", "L.g, R.g"),
]


def build_db(rows) -> Database:
    db = Database()
    table = db.create_table(
        "t",
        TableSchema.of(
            ("id", SqlType.INTEGER),
            ("g", SqlType.INTEGER),
            ("j1", SqlType.INTEGER),
            ("j2", SqlType.INTEGER),
            ("v", SqlType.INTEGER),
        ),
        primary_key=("id",),
    )
    db.declare_domain("t", "v", lower=0)
    table.insert_many((i,) + row for i, row in enumerate(rows))
    return db


@given(
    rows=rows_strategy,
    join_index=st.integers(0, len(JOIN_CONJUNCTS) - 1),
    having_index=st.integers(0, len(HAVINGS) - 1),
    grouping_index=st.integers(0, len(GROUPINGS) - 1),
    threshold=st.integers(0, 6),
    batch_size=st.sampled_from([1, 3, 16, 1024]),
)
@settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_iceberg_query_mode_parity(
    rows, join_index, having_index, grouping_index, threshold, batch_size
):
    db = build_db(rows)
    select_cols, group_cols = GROUPINGS[grouping_index]
    sql = (
        f"SELECT {select_cols}, COUNT(*) FROM t L, t R "
        f"WHERE {JOIN_CONJUNCTS[join_index]} "
        f"GROUP BY {group_cols} "
        f"HAVING {HAVINGS[having_index].format(c=threshold)}"
    )
    for config in (EngineConfig.postgres(), EngineConfig.vendor()):
        row = execute(db, sql, config)
        batch = execute(
            db,
            sql,
            dataclasses.replace(
                config, execution_mode="batch", batch_size=batch_size
            ),
        )
        assert batch.rows == row.rows, sql
        assert batch.stats.as_dict() == row.stats.as_dict(), sql
    row = SmartIceberg(db).execute(sql)
    batch = SmartIceberg(
        db, execution_mode="batch", batch_size=batch_size
    ).execute(sql)
    assert batch.rows == row.rows, sql
    assert batch.stats.as_dict() == row.stats.as_dict(), sql
