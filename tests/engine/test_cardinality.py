"""Tests for cardinality/selectivity estimation.

Exercises the estimator's contracts: bounded error on the pinned-seed
workload generators, monotone conjunctions (adding a conjunct never
raises an estimated selectivity), and the graceful fallback chain when
no statistics were collected.
"""

import pytest

from repro.engine.cardinality import (
    DEFAULT_RELATION_ROWS,
    CardinalityEstimator,
    RelationProfile,
)
from repro.sql import ast
from repro.storage.catalog import Database
from repro.storage.schema import TableSchema
from repro.storage.types import SqlType
from repro.workloads.baseball import BaseballConfig, load_batting


def col(alias, name):
    return ast.ColumnRef(alias, name)


def lit(value):
    return ast.Literal(value)


def eq(left, right):
    return ast.BinaryOp("=", left, right)


@pytest.fixture(scope="module")
def batting_db():
    db = Database()
    load_batting(db, BaseballConfig(n_rows=400, seed=2017))
    db.analyze()
    return db


@pytest.fixture(scope="module")
def estimator(batting_db):
    table = batting_db.table("batting")
    profile = RelationProfile(
        alias="b",
        columns=tuple(table.schema.column_names),
        rows=float(len(table)),
        table=table,
        stats=table.statistics,
    )
    return CardinalityEstimator([profile])


class TestNdv:
    def test_analyzed_ndv_bounded_error(self, batting_db, estimator):
        table = batting_db.table("batting")
        for column in ("playerid", "teamid", "year"):
            truth = len(set(table.column_values(column)))
            estimate = estimator.profiles["b"].ndv(column)
            assert abs(estimate - truth) / truth < 0.25, column

    def test_hash_index_fallback_without_stats(self):
        # No ANALYZE stats: a hash index exactly on the column supplies
        # an exact distinct count for free.
        db = Database()
        table = db.create_table(
            "keyed", TableSchema.of(("k", SqlType.INTEGER), ("v", SqlType.INTEGER))
        )
        table.insert_many([(i % 7, i) for i in range(100)])
        table.create_index("keyed_k", ["k"], kind="hash")
        profile = RelationProfile(
            alias="kk", columns=("k", "v"), rows=float(len(table)), table=table
        )
        assert profile.ndv("k") == 7.0

    def test_sqrt_fallback_without_table(self):
        profile = RelationProfile(alias="d", columns=("x",), rows=900.0)
        assert profile.ndv("x") == 30.0


class TestSelectivity:
    def test_point_equality_matches_frequency(self, batting_db, estimator):
        table = batting_db.table("batting")
        values = table.column_values("year")
        year = values[0]
        truth = values.count(year) / len(values)
        estimate = estimator.selectivity(eq(col("b", "year"), lit(year)))
        assert 0.0 < estimate <= 1.0
        assert abs(estimate - truth) <= max(0.1, 2 * truth)

    def test_range_tracks_histogram(self, batting_db, estimator):
        table = batting_db.table("batting")
        values = sorted(table.column_values("b_h"))
        median = values[len(values) // 2]
        truth = sum(1 for v in values if v < median) / len(values)
        estimate = estimator.selectivity(
            ast.BinaryOp("<", col("b", "b_h"), lit(median))
        )
        assert abs(estimate - truth) < 0.15

    def test_conjunction_monotone(self, estimator):
        # Adding a conjunct must never raise the estimate.
        conjuncts = [
            ast.BinaryOp("<", col("b", "b_h"), lit(50)),
            eq(col("b", "year"), lit(2000)),
            ast.BinaryOp(">", col("b", "b_hr"), lit(3)),
            eq(col("b", "teamid"), lit("t1")),
        ]
        previous = 1.0
        for count in range(1, len(conjuncts) + 1):
            estimate = estimator.conjunction(conjuncts[:count])
            assert estimate <= previous + 1e-12
            previous = estimate

    def test_all_selectivities_clamped(self, estimator):
        exprs = [
            ast.Between(col("b", "b_h"), lit(0), lit(1_000_000)),
            ast.Between(col("b", "b_h"), lit(5), lit(1), negated=False),
            ast.IsNull(col("b", "b_h")),
            ast.IsNull(col("b", "b_h"), negated=True),
            ast.UnaryOp("NOT", eq(col("b", "year"), lit(2000))),
            ast.InList(col("b", "teamid"), (lit("t1"), lit("t2"))),
            ast.BinaryOp(
                "OR",
                eq(col("b", "year"), lit(2000)),
                eq(col("b", "year"), lit(2001)),
            ),
        ]
        for expr in exprs:
            estimate = estimator.selectivity(expr)
            assert 0.0 <= estimate <= 1.0, expr

    def test_join_conjunct_uses_max_ndv(self):
        left = RelationProfile(alias="l", columns=("k",), rows=10_000.0)
        right = RelationProfile(alias="r", columns=("k",), rows=100.0)
        estimator = CardinalityEstimator([left, right])
        estimate = estimator.selectivity(eq(col("l", "k"), col("r", "k")))
        assert estimate == 1.0 / max(left.ndv("k"), right.ndv("k"))


class TestCardinalities:
    def test_scan_rows_filters_shrink(self, estimator, batting_db):
        table = batting_db.table("batting")
        unfiltered = estimator.scan_rows("b", [])
        assert unfiltered == float(len(table))
        filtered = estimator.scan_rows(
            "b", [ast.BinaryOp("<", col("b", "b_h"), lit(10))]
        )
        assert filtered < unfiltered

    def test_join_rows_order_independent(self):
        left = RelationProfile(alias="l", columns=("k",), rows=500.0)
        right = RelationProfile(alias="r", columns=("k",), rows=80.0)
        estimator = CardinalityEstimator([left, right])
        conjunct = [eq(col("l", "k"), col("r", "k"))]
        filtered = {"l": 500.0, "r": 80.0}
        forward = estimator.join_rows(filtered, ["l", "r"], conjunct)
        backward = estimator.join_rows(filtered, ["r", "l"], conjunct)
        assert forward == backward
        assert forward < 500.0 * 80.0

    def test_default_rows_constant(self):
        profile = RelationProfile(alias="cte", columns=("x",), rows=DEFAULT_RELATION_ROWS)
        estimator = CardinalityEstimator([profile])
        assert estimator.scan_rows("cte", []) == DEFAULT_RELATION_ROWS
