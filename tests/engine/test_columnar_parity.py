"""Differential tests: columnar mode vs. row and batch mode.

The columnar engine's contract (see DESIGN.md): for every query, on
every system configuration, under every join-order policy, columnar
execution must produce *identical result rows* and *identical folded
work counters* (:meth:`ExecutionStats.parity_dict`).  The only
permitted difference from row mode is the ``rows_scanned`` /
``rows_skipped`` split a zone-map chunk elimination introduces —
``rows_scanned + rows_skipped`` must equal the row-mode scan count
exactly, and the mode-variant counters (``chunks_skipped``,
``fused_compilations``) must never leak into anything else.

This is the CI ``columnar`` job's parity suite: Q1-Q8 across
{row, batch, columnar} × {syntactic, dp}, plus the workload queries,
governed executions, and odd chunk sizes.
"""

import dataclasses

import pytest

from repro import CancelToken, EngineConfig, SmartIceberg
from repro.engine import execute
from repro.storage import Database
from repro.workloads import (
    BaseballConfig,
    BasketConfig,
    complex_query,
    discount_query,
    figure1_queries,
    load_baskets,
    load_discount_schema,
    make_batting_db,
    market_basket_query,
    pairs_query,
    skyband_query,
)
from repro.workloads.baseball import load_unpivoted


BATTING = make_batting_db(BaseballConfig(n_rows=400, seed=21))

#: Baseline configs × join-order policies exercised per query.
BASELINE_CONFIGS = tuple(
    dataclasses.replace(config, join_order=join_order)
    for config in (
        EngineConfig.postgres(),
        EngineConfig(join_policy="nlj-only", label="nlj-only"),
    )
    for join_order in ("syntactic", "dp")
)

SMART_CONFIGS = {
    "all": {},
    "pruning": dict(apriori=False, memo=False),
    "memo": dict(apriori=False, pruning=False),
    "apriori": dict(memo=False, pruning=False),
}


def assert_columnar_agrees(db, sql, batch_size=None, configs=BASELINE_CONFIGS):
    """All three modes agree on rows; counters agree modulo the fold."""
    for config in configs:
        results = {}
        for mode in ("row", "batch", "columnar"):
            mode_config = dataclasses.replace(
                config, execution_mode=mode, batch_size=batch_size
            )
            results[mode] = execute(db, sql, mode_config)
        row, batch, columnar = (
            results["row"], results["batch"], results["columnar"]
        )
        label = f"{config.label}/{config.join_order}"
        assert columnar.execution_mode == "columnar"
        assert batch.rows == row.rows, f"{label}: batch rows differ"
        assert columnar.rows == row.rows, f"{label}: columnar rows differ"
        # Batch mode: every counter identical, no fold needed.
        assert batch.stats.as_dict() == row.stats.as_dict(), (
            f"{label}: batch counters differ"
        )
        assert columnar.stats.parity_dict() == row.stats.parity_dict(), (
            f"{label}: columnar folded counters differ"
        )
        # The fold invariant, stated directly.
        assert (
            columnar.stats.rows_scanned + columnar.stats.rows_skipped
            == row.stats.rows_scanned
        ), f"{label}: scan/skip split broken"
        assert row.stats.chunks_skipped == 0
        assert row.stats.fused_compilations == 0


class TestFigure1Queries:
    @pytest.mark.parametrize("name", [f"Q{i}" for i in range(1, 9)])
    def test_columnar_parity(self, name):
        query = figure1_queries()[name]
        assert_columnar_agrees(BATTING, query.sql)

    @pytest.mark.parametrize("name", [f"Q{i}" for i in range(1, 9)])
    def test_smart_systems_columnar_parity(self, name):
        sql = figure1_queries()[name].sql
        for label, toggles in SMART_CONFIGS.items():
            row = SmartIceberg(BATTING, **toggles).execute(sql)
            columnar = SmartIceberg(
                BATTING, execution_mode="columnar", **toggles
            ).execute(sql)
            assert columnar.rows == row.rows, f"smart[{label}]: rows differ"
            assert (
                columnar.stats.parity_dict() == row.stats.parity_dict()
            ), f"smart[{label}]: counters differ"

    @pytest.mark.parametrize("name", ["Q1", "Q4", "Q7"])
    def test_governed_columnar_is_bit_identical(self, name):
        """A governor whose budgets never trip must not change a thing
        in columnar mode either: same rows, same value for EVERY
        counter including the zone-map ones."""
        sql = figure1_queries()[name].sql
        governor_knobs = dict(
            max_rows_scanned=10**12,
            max_join_pairs=10**12,
            max_cache_bytes=10**12,
            deadline_seconds=3600.0,
            cancel_token=CancelToken(),
            degradation="fallback",
        )
        plain = SmartIceberg(BATTING, execution_mode="columnar").execute(sql)
        governed = SmartIceberg(
            BATTING, execution_mode="columnar", **governor_knobs
        ).execute(sql)
        assert governed.rows == plain.rows
        assert governed.stats.as_dict() == plain.stats.as_dict()
        assert governed.stats.degradations == []


class TestWorkloadQueries:
    def test_l2_skyband(self):
        assert_columnar_agrees(BATTING, skyband_query("b_h", "b_hr", 10))

    def test_l4_pairs(self):
        assert_columnar_agrees(BATTING, pairs_query(540))

    def test_l3_complex(self):
        db = Database()
        load_unpivoted(db, BaseballConfig(n_rows=400, seed=21), n_categories=4)
        assert_columnar_agrees(db, complex_query(10))

    def test_l1_market_basket(self):
        db = Database()
        load_baskets(db, BasketConfig(n_baskets=200, n_items=60, seed=13))
        assert_columnar_agrees(db, market_basket_query(support=5))

    def test_example7_discount(self):
        db = Database()
        load_discount_schema(db, n_baskets=100, n_items=15, n_discounts=5)
        assert_columnar_agrees(db, discount_query(threshold=3))

    @pytest.mark.parametrize("batch_size", [1, 7, 64])
    def test_odd_chunk_sizes(self, batch_size):
        """Chunk size must never affect results or folded counters."""
        query = figure1_queries()["Q1"]
        assert_columnar_agrees(BATTING, query.sql, batch_size=batch_size)


class TestColumnarObservability:
    def test_fused_compilations_are_charged_deterministically(self):
        """Two identical executions charge identical compile counts —
        the process-level kernel cache must not leak into stats."""
        sql = figure1_queries()["Q1"].sql
        config = dataclasses.replace(
            EngineConfig.postgres(), execution_mode="columnar"
        )
        first = execute(BATTING, sql, config)
        second = execute(BATTING, sql, config)
        assert first.stats.fused_compilations > 0
        assert (
            first.stats.fused_compilations == second.stats.fused_compilations
        )
        assert first.stats.as_dict() == second.stats.as_dict()

    def test_trace_timing_columnar_is_parity_clean(self):
        """Tracing columnar execution changes nothing, and the span
        tree's exclusive deltas sum to the query totals — including
        the three columnar counters."""
        sql = figure1_queries()["Q1"].sql
        config = dataclasses.replace(
            EngineConfig.postgres(), execution_mode="columnar"
        )
        plain = execute(BATTING, sql, config)
        traced = execute(
            BATTING, sql, dataclasses.replace(config, trace="timing")
        )
        assert traced.rows == plain.rows
        assert traced.stats.as_dict() == plain.stats.as_dict()
        assert traced.profile is not None
        assert traced.profile.total_stats() == traced.stats.as_dict()
