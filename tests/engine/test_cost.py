"""Tests for the calibrated cost model (``repro.engine.cost``)."""

import json
import pathlib

import pytest

from repro.engine.cost import (
    COUNTER_NAMES,
    DEFAULT_UNIT_COSTS,
    CostModel,
    UnitCosts,
    fit_unit_costs,
)
from repro.engine.stats import ExecutionStats

BENCH_FILE = pathlib.Path(__file__).resolve().parents[2] / "BENCH_1.json"


class TestUnitCosts:
    def test_defaults_match_execution_stats_cost(self):
        # The model's unit costs ARE the coefficients of
        # ExecutionStats.cost(): pricing a counter bundle through the
        # model must reproduce the measured cost exactly.
        stats = ExecutionStats(
            rows_scanned=100,
            join_pairs=40,
            index_probes=7,
            aggregation_inputs=11,
            prune_checks=3,
            cache_hits=2,
        )
        assert DEFAULT_UNIT_COSTS.cost_of(stats.as_dict()) == stats.cost()

    def test_as_dict_roundtrip(self):
        units = UnitCosts()
        assert set(units.as_dict()) == set(COUNTER_NAMES)


class TestFit:
    def test_fit_recovers_default_weights(self):
        # Synthesize records whose cost is exactly the default model:
        # least squares must recover the coefficients.
        records = []
        for i in range(1, 20):
            # Linearly independent counter trajectories (a collinear
            # design matrix would make the fit underdetermined).
            counters = {
                "rows_scanned": (i * i * 13) % 101,
                "join_pairs": (i * 37) % 97,
                "index_probes": (i * i * 7) % 89,
                "aggregation_inputs": (i * 53) % 83,
                "prune_checks": (i * i * 29) % 79,
                "cache_hits": (i * 71) % 73,
            }
            records.append(
                {"counters": counters, "cost": DEFAULT_UNIT_COSTS.cost_of(counters)}
            )
        fitted = fit_unit_costs(records)
        for name in COUNTER_NAMES:
            assert getattr(fitted, name) == pytest.approx(
                getattr(DEFAULT_UNIT_COSTS, name), abs=1e-6
            )

    def test_fit_pins_degenerate_directions_to_defaults(self):
        # A counter that never varies cannot be fit; its coefficient
        # stays at the default instead of going wild.
        records = [
            {"counters": {"rows_scanned": n}, "cost": float(n)} for n in (10, 20, 30)
        ]
        fitted = fit_unit_costs(records)
        assert fitted.rows_scanned == pytest.approx(1.0)
        assert fitted.join_pairs == DEFAULT_UNIT_COSTS.join_pairs

    def test_fit_empty_returns_defaults(self):
        assert fit_unit_costs([]) == DEFAULT_UNIT_COSTS

    def test_fit_against_recorded_bench_file(self):
        # The repo's BENCH file was measured by ExecutionStats.cost();
        # calibration against it must reproduce the default weights
        # (this is the drift alarm the tentpole asks for).
        if not BENCH_FILE.exists():  # pragma: no cover
            pytest.skip("no BENCH_1.json in repo")
        records = json.loads(BENCH_FILE.read_text())["records"]
        fitted = fit_unit_costs(records)
        for name in COUNTER_NAMES:
            assert getattr(fitted, name) == pytest.approx(
                getattr(DEFAULT_UNIT_COSTS, name), abs=1e-6
            ), name


class TestCostModel:
    def test_formulas_monotone_in_cardinality(self):
        model = CostModel()
        assert model.scan(100) < model.scan(1000)
        assert model.nested_loop_join(10, 10) < model.nested_loop_join(20, 10)
        assert model.hash_join(50, 10) < model.hash_join(50, 100)
        assert model.index_nested_loop_join(10, 5) < model.index_nested_loop_join(
            100, 5
        )
        assert model.aggregate(10) < model.aggregate(100)

    def test_hash_join_cheaper_than_nlj_when_sparse(self):
        # 1000x1000 NLJ evaluates every pair; a hash join touching only
        # 500 matching pairs must price far below it.
        model = CostModel()
        assert model.hash_join(1000, 500) < model.nested_loop_join(1000, 1000) / 100
