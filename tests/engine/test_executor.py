"""End-to-end engine tests: SQL in, rows out, against hand computations."""

import pytest

from repro.errors import PlanningError
from repro.engine import EngineConfig, execute, explain
from repro.storage import Database, SqlType, TableSchema


@pytest.fixture
def db() -> Database:
    database = Database()
    t = database.create_table(
        "t",
        TableSchema.of(
            ("id", SqlType.INTEGER), ("grp", SqlType.TEXT), ("v", SqlType.INTEGER)
        ),
        primary_key=("id",),
    )
    t.insert_many(
        [
            (1, "a", 10),
            (2, "a", 20),
            (3, "b", 30),
            (4, "b", None),
            (5, None, 50),
        ]
    )
    u = database.create_table(
        "u", TableSchema.of(("id", SqlType.INTEGER), ("w", SqlType.INTEGER))
    )
    u.insert_many([(1, 100), (2, 200), (2, 201), (9, 900)])
    return database


class TestProjection:
    def test_select_columns(self, db):
        result = execute(db, "SELECT id, v FROM t WHERE grp = 'a'")
        assert sorted(result.rows) == [(1, 10), (2, 20)]
        assert result.columns == ("id", "v")

    def test_select_star(self, db):
        result = execute(db, "SELECT * FROM t WHERE id = 3")
        assert result.rows == [(3, "b", 30)]

    def test_expressions_and_aliases(self, db):
        result = execute(db, "SELECT v * 2 AS dbl FROM t WHERE id = 1")
        assert result.columns == ("dbl",)
        assert result.rows == [(20,)]

    def test_distinct(self, db):
        result = execute(db, "SELECT DISTINCT grp FROM t WHERE grp IS NOT NULL")
        assert sorted(result.rows) == [("a",), ("b",)]


class TestFilters:
    def test_null_rows_filtered_by_comparison(self, db):
        result = execute(db, "SELECT id FROM t WHERE v > 15")
        assert sorted(result.rows) == [(2,), (3,), (5,)]  # NULL v excluded

    def test_is_null(self, db):
        result = execute(db, "SELECT id FROM t WHERE v IS NULL")
        assert result.rows == [(4,)]

    def test_in_list(self, db):
        result = execute(db, "SELECT id FROM t WHERE id IN (1, 3, 7)")
        assert sorted(result.rows) == [(1,), (3,)]


class TestJoins:
    def test_inner_join(self, db):
        result = execute(
            db, "SELECT t.id, u.w FROM t, u WHERE t.id = u.id ORDER BY u.w"
        )
        assert result.rows == [(1, 100), (2, 200), (2, 201)]

    def test_explicit_join_syntax(self, db):
        implicit = execute(db, "SELECT t.id, u.w FROM t, u WHERE t.id = u.id")
        explicit = execute(db, "SELECT t.id, u.w FROM t JOIN u ON t.id = u.id")
        assert sorted(implicit.rows) == sorted(explicit.rows)

    def test_inequality_join(self, db):
        result = execute(
            db,
            "SELECT t.id, u.id FROM t, u WHERE t.id = u.id AND t.v < u.w",
        )
        assert sorted(result.rows) == [(1, 1), (2, 2), (2, 2)]

    def test_self_join(self, db):
        result = execute(
            db,
            "SELECT a.id, b.id FROM t a, t b "
            "WHERE a.grp = b.grp AND a.id < b.id",
        )
        assert sorted(result.rows) == [(1, 2), (3, 4)]

    def test_all_policies_agree(self, db):
        sql = (
            "SELECT t.id, u.w FROM t, u WHERE t.id = u.id AND u.w > 100"
        )
        results = [
            sorted(execute(db, sql, EngineConfig(join_policy=policy)).rows)
            for policy in ("index-first", "hash-first", "nlj-only")
        ]
        assert results[0] == results[1] == results[2]


class TestAggregation:
    def test_group_by_count(self, db):
        result = execute(
            db, "SELECT grp, COUNT(*) FROM t GROUP BY grp ORDER BY grp"
        )
        # NULL group sorts last under ASC (PostgreSQL default).
        assert result.rows == [("a", 2), ("b", 2), (None, 1)]

    def test_aggregates_skip_nulls(self, db):
        result = execute(
            db,
            "SELECT grp, COUNT(v), SUM(v), MIN(v), MAX(v), AVG(v) "
            "FROM t WHERE grp = 'b' GROUP BY grp",
        )
        assert result.rows == [("b", 1, 30, 30, 30, 30.0)]

    def test_scalar_aggregate(self, db):
        result = execute(db, "SELECT COUNT(*), SUM(v) FROM t")
        assert result.rows == [(5, 110)]

    def test_scalar_aggregate_empty_input(self, db):
        result = execute(db, "SELECT COUNT(*), SUM(v) FROM t WHERE id > 99")
        assert result.rows == [(0, None)]

    def test_having(self, db):
        result = execute(
            db,
            "SELECT grp, COUNT(*) FROM t GROUP BY grp HAVING COUNT(*) >= 2 "
            "ORDER BY grp",
        )
        assert result.rows == [("a", 2), ("b", 2)]

    def test_having_requires_grouping(self, db):
        with pytest.raises(PlanningError):
            execute(db, "SELECT id FROM t HAVING id > 1")

    def test_group_by_expression(self, db):
        result = execute(
            db,
            "SELECT id % 2, COUNT(*) FROM t GROUP BY id % 2 ORDER BY id % 2",
        )
        assert result.rows == [(0, 2), (1, 3)]

    def test_count_distinct(self, db):
        result = execute(db, "SELECT COUNT(DISTINCT grp) FROM t")
        assert result.rows == [(2,)]

    def test_order_by_aggregate(self, db):
        result = execute(
            db,
            "SELECT grp, COUNT(*) FROM t WHERE grp IS NOT NULL "
            "GROUP BY grp ORDER BY COUNT(*) DESC, grp",
        )
        assert result.rows == [("a", 2), ("b", 2)]


class TestOrderLimit:
    def test_order_desc_nulls_first(self, db):
        result = execute(db, "SELECT v FROM t ORDER BY v DESC")
        assert result.rows == [(None,), (50,), (30,), (20,), (10,)]

    def test_order_asc_nulls_last(self, db):
        result = execute(db, "SELECT v FROM t ORDER BY v")
        assert result.rows == [(10,), (20,), (30,), (50,), (None,)]

    def test_limit(self, db):
        result = execute(db, "SELECT id FROM t ORDER BY id LIMIT 2")
        assert result.rows == [(1,), (2,)]

    def test_order_by_output_alias(self, db):
        result = execute(db, "SELECT v * -1 AS neg FROM t WHERE v IS NOT NULL ORDER BY neg")
        assert result.rows == [(-50,), (-30,), (-20,), (-10,)]


class TestSubqueriesAndCtes:
    def test_in_subquery(self, db):
        result = execute(
            db, "SELECT id FROM t WHERE id IN (SELECT id FROM u)"
        )
        assert sorted(result.rows) == [(1,), (2,)]

    def test_cte(self, db):
        result = execute(
            db,
            "WITH big AS (SELECT id FROM t WHERE v >= 30) "
            "SELECT COUNT(*) FROM big",
        )
        assert result.rows == [(2,)]

    def test_cte_referenced_twice(self, db):
        result = execute(
            db,
            "WITH x AS (SELECT id FROM t WHERE v >= 20) "
            "SELECT a.id, b.id FROM x a, x b WHERE a.id < b.id",
        )
        assert len(result.rows) == 3

    def test_cte_column_list(self, db):
        result = execute(
            db,
            "WITH x(n) AS (SELECT v FROM t WHERE id = 1) SELECT n FROM x",
        )
        assert result.rows == [(10,)]

    def test_derived_table(self, db):
        result = execute(
            db,
            "SELECT s.total FROM "
            "(SELECT grp, SUM(v) AS total FROM t GROUP BY grp) s "
            "WHERE s.grp = 'a'",
        )
        assert result.rows == [(30,)]


class TestStatsAndExplain:
    def test_rows_output_counted(self, db):
        result = execute(db, "SELECT id FROM t")
        assert result.stats.rows_output == 5

    def test_rows_scanned_counted(self, db):
        result = execute(db, "SELECT id FROM t")
        assert result.stats.rows_scanned == 5

    def test_explain_mentions_operators(self, db):
        text = explain(db, "SELECT grp, COUNT(*) FROM t GROUP BY grp")
        assert "HashAggregate" in text
        assert "TableScan" in text

    def test_elapsed_time_positive(self, db):
        assert execute(db, "SELECT id FROM t").elapsed_seconds >= 0


class TestErrors:
    def test_unknown_table(self, db):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            execute(db, "SELECT 1 FROM ghost")

    def test_unknown_column(self, db):
        with pytest.raises(PlanningError):
            execute(db, "SELECT nope FROM t")

    def test_ambiguous_column(self, db):
        with pytest.raises(PlanningError):
            execute(db, "SELECT id FROM t a, t b WHERE a.id = b.id")

    def test_duplicate_alias(self, db):
        with pytest.raises(PlanningError):
            execute(db, "SELECT 1 FROM t x, u x")

    def test_missing_from(self, db):
        with pytest.raises(PlanningError):
            execute(db, "SELECT 1")
