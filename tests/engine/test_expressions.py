"""Tests for expression compilation and SQL evaluation semantics."""

import pytest

from repro.errors import ExecutionError, PlanningError
from repro.sql import ast
from repro.sql.parser import parse_expression
from repro.engine.expressions import ExpressionCompiler
from repro.engine.layout import Layout


LAYOUT = Layout([("t", "a"), ("t", "b"), ("t", "s")])


def evaluate(sql: str, row=(1, 2, "x"), params=None):
    compiler = ExpressionCompiler(LAYOUT)
    return compiler.compile(parse_expression(sql))(row, params or {})


class TestBasics:
    def test_literal(self):
        assert evaluate("42") == 42

    def test_column_by_position(self):
        assert evaluate("t.b") == 2
        assert evaluate("b") == 2

    def test_parameter(self):
        assert evaluate(":p + 1", params={"p": 10}) == 11

    def test_arithmetic(self):
        assert evaluate("a + b * 2") == 5
        assert evaluate("b - a") == 1
        assert evaluate("-a") == -1

    def test_integer_division_stays_int(self):
        assert evaluate("4 / 2") == 2
        assert isinstance(evaluate("4 / 2"), int)

    def test_fractional_division(self):
        assert evaluate("5 / 2") == 2.5

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            evaluate("a / 0")

    def test_modulo(self):
        assert evaluate("7 % 3") == 1
        with pytest.raises(ExecutionError):
            evaluate("7 % 0")

    def test_concat(self):
        assert evaluate("s || 'y'") == "xy"


class TestNullSemantics:
    def test_arith_propagates_null(self):
        assert evaluate("a + b", row=(None, 2, "x")) is None

    def test_comparison_with_null_is_unknown(self):
        assert evaluate("a < b", row=(None, 2, "x")) is None
        assert evaluate("a = a", row=(None, 2, "x")) is None

    def test_and_or_kleene(self):
        assert evaluate("a < b AND s = 'x'", row=(None, 2, "x")) is None
        assert evaluate("a < b OR s = 'x'", row=(None, 2, "x")) is True
        assert evaluate("a < b AND 1 = 2", row=(None, 2, "x")) is False

    def test_is_null(self):
        assert evaluate("a IS NULL", row=(None, 2, "x")) is True
        assert evaluate("a IS NOT NULL", row=(None, 2, "x")) is False

    def test_between_null(self):
        assert evaluate("a BETWEEN 0 AND 5", row=(None, 2, "x")) is None

    def test_in_list_null_needle(self):
        assert evaluate("a IN (1, 2)", row=(None, 2, "x")) is None

    def test_in_list_null_member(self):
        # 3 IN (1, NULL): unknown, not false.
        assert evaluate("a IN (1, NULL)", row=(3, 2, "x")) is None
        assert evaluate("a IN (3, NULL)", row=(3, 2, "x")) is True

    def test_not_in_with_null_member(self):
        assert evaluate("a NOT IN (1, NULL)", row=(3, 2, "x")) is None


class TestComparisons:
    def test_all_operators(self):
        assert evaluate("a < b") is True
        assert evaluate("a <= b") is True
        assert evaluate("a > b") is False
        assert evaluate("a >= b") is False
        assert evaluate("a = b") is False
        assert evaluate("a <> b") is True

    def test_between(self):
        assert evaluate("b BETWEEN 1 AND 3") is True
        assert evaluate("b NOT BETWEEN 1 AND 3") is False


class TestFunctions:
    def test_abs(self):
        assert evaluate("ABS(a - b)") == 1

    def test_round(self):
        assert evaluate("ROUND(2.567, 2)") == 2.57

    def test_coalesce(self):
        assert evaluate("COALESCE(NULL, NULL, b)") == 2

    def test_least_greatest(self):
        assert evaluate("LEAST(a, b)") == 1
        assert evaluate("GREATEST(a, b)") == 2

    def test_least_null_propagates(self):
        assert evaluate("LEAST(a, NULL)") is None

    def test_unknown_function(self):
        with pytest.raises(PlanningError):
            evaluate("FROBNICATE(a)")

    def test_aggregate_rejected_in_scalar_context(self):
        with pytest.raises(PlanningError):
            evaluate("COUNT(*)")


class TestCase:
    def test_first_matching_branch(self):
        assert (
            evaluate("CASE WHEN a > b THEN 'hi' WHEN a < b THEN 'lo' END")
            == "lo"
        )

    def test_default(self):
        assert evaluate("CASE WHEN a > b THEN 1 ELSE 0 END") == 0

    def test_no_match_no_default_is_null(self):
        assert evaluate("CASE WHEN a > b THEN 1 END") is None

    def test_unknown_condition_skipped(self):
        assert (
            evaluate("CASE WHEN a > b THEN 1 ELSE 2 END", row=(None, 2, "x"))
            == 2
        )


class TestSubqueries:
    def test_in_subquery(self):
        select = ast.Select(
            items=(ast.SelectItem(ast.ColumnRef(None, "v")),),
            from_items=(ast.NamedTable("dual"),),
        )
        calls = []

        def executor(subquery):
            calls.append(subquery)
            return [(1,), (2,)]

        compiler = ExpressionCompiler(LAYOUT, executor)
        expr = ast.InSubquery(ast.ColumnRef("t", "a"), select)
        fn = compiler.compile(expr)
        assert fn((1, 2, "x"), {}) is True
        assert fn((5, 2, "x"), {}) is False
        assert len(calls) == 1  # memoized across evaluations

    def test_exists_subquery(self):
        compiler = ExpressionCompiler(LAYOUT, lambda sq: [])
        select = ast.Select(
            items=(ast.SelectItem(ast.Literal(1)),),
            from_items=(ast.NamedTable("dual"),),
        )
        assert compiler.compile(ast.ExistsSubquery(select))((1, 2, "x"), {}) is False
        assert (
            compiler.compile(ast.ExistsSubquery(select, negated=True))(
                (1, 2, "x"), {}
            )
            is True
        )

    def test_subquery_without_executor_rejected(self):
        compiler = ExpressionCompiler(LAYOUT, None)
        select = ast.Select(items=(ast.SelectItem(ast.Literal(1)),))
        fn = compiler.compile(ast.ExistsSubquery(select))
        with pytest.raises(PlanningError):
            fn((1, 2, "x"), {})

    def test_tuple_in_subquery(self):
        compiler = ExpressionCompiler(LAYOUT, lambda sq: [(1, 2), (5, 6)])
        select = ast.Select(items=(ast.SelectItem(ast.Literal(1)),))
        expr = ast.InSubquery(
            ast.TupleExpr((ast.ColumnRef("t", "a"), ast.ColumnRef("t", "b"))),
            select,
        )
        fn = compiler.compile(expr)
        assert fn((1, 2, "x"), {}) is True
        assert fn((1, 3, "x"), {}) is False
