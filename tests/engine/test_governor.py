"""Tests for the execution governor: budgets, cancellation, degradation.

The acceptance bar: every budget trips as a typed error carrying
accurate partial stats; ``degradation="fallback"`` keeps answers
correct while recording what was given up; and a governor with nothing
to enforce changes nothing.
"""

import dataclasses

import pytest

from repro import CancelToken, EngineConfig, SmartIceberg
from repro.engine import execute
from repro.engine.governor import Governor
from repro.engine.stats import ExecutionStats
from repro.errors import (
    BudgetExceededError,
    ExecutionError,
    GovernorError,
    QueryCancelledError,
    ReproError,
)
from repro.testing import FaultPlan, FaultSpec
from repro.workloads import BaseballConfig, figure1_queries, make_batting_db

BATTING = make_batting_db(BaseballConfig(n_rows=200, seed=21))
Q1 = figure1_queries()["Q1"].sql


def governed_config(**knobs) -> EngineConfig:
    return dataclasses.replace(EngineConfig.postgres(), **knobs)


class TestConfigValidation:
    def test_bad_degradation_mode(self):
        with pytest.raises(ValueError, match="degradation"):
            EngineConfig(degradation="panic")

    @pytest.mark.parametrize(
        "knob", ["max_rows_scanned", "max_join_pairs", "max_cache_bytes"]
    )
    def test_negative_budget(self, knob):
        with pytest.raises(ValueError, match=knob):
            EngineConfig(**{knob: -1})

    def test_negative_deadline(self):
        with pytest.raises(ValueError, match="deadline_seconds"):
            EngineConfig(deadline_seconds=-0.5)

    def test_cache_policy_validated_at_boundary(self):
        with pytest.raises(ValueError, match="cache_policy"):
            SmartIceberg(BATTING, cache_policy="fifo")

    def test_cache_max_entries_validated_at_boundary(self):
        with pytest.raises(ValueError, match="cache_max_entries"):
            SmartIceberg(BATTING, cache_max_entries=0)

    def test_policy_requires_max_entries(self):
        with pytest.raises(ValueError, match="cache_max_entries"):
            SmartIceberg(BATTING, cache_policy="lru")


class TestUngoverned:
    def test_no_knobs_means_no_governor(self):
        assert Governor.from_config(EngineConfig.postgres(), ExecutionStats()) is None

    def test_idle_governor_changes_nothing(self):
        """Enormous budgets + a live token: rows and EVERY counter match."""
        plain = execute(BATTING, Q1, EngineConfig.postgres())
        governed = execute(
            BATTING,
            Q1,
            governed_config(
                max_rows_scanned=10**12,
                max_join_pairs=10**12,
                max_cache_bytes=10**12,
                deadline_seconds=3600.0,
                cancel_token=CancelToken(),
            ),
        )
        assert governed.rows == plain.rows
        assert governed.stats.as_dict() == plain.stats.as_dict()
        assert governed.stats.degradations == []


class TestBudgets:
    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_rows_scanned(self, mode):
        config = governed_config(max_rows_scanned=25, execution_mode=mode)
        with pytest.raises(BudgetExceededError) as info:
            execute(BATTING, Q1, config)
        error = info.value
        assert error.budget == "rows_scanned"
        assert error.limit == 25
        assert error.used > 25
        assert error.stats is not None
        assert error.stats.rows_scanned == error.used

    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_join_pairs(self, mode):
        config = governed_config(max_join_pairs=10, execution_mode=mode)
        with pytest.raises(BudgetExceededError) as info:
            execute(BATTING, Q1, config)
        error = info.value
        assert error.budget == "join_pairs"
        assert error.stats.join_pairs > 10

    def test_budget_errors_are_repro_errors(self):
        with pytest.raises(ReproError):
            execute(BATTING, Q1, governed_config(max_rows_scanned=1))
        with pytest.raises(ExecutionError):
            execute(BATTING, Q1, governed_config(max_rows_scanned=1))
        with pytest.raises(GovernorError):
            execute(BATTING, Q1, governed_config(max_rows_scanned=1))

    def test_budget_applies_to_smart_execution(self):
        with pytest.raises(BudgetExceededError) as info:
            SmartIceberg(BATTING, max_rows_scanned=25).execute(Q1)
        assert info.value.budget == "rows_scanned"
        assert info.value.stats is not None


class TestCancellation:
    def test_pre_cancelled_token(self):
        token = CancelToken()
        token.cancel("user hit ctrl-c")
        with pytest.raises(QueryCancelledError, match="user hit ctrl-c") as info:
            execute(BATTING, Q1, governed_config(cancel_token=token))
        assert info.value.stats is not None

    def test_token_is_one_shot(self):
        token = CancelToken()
        assert not token.cancelled
        token.cancel()
        token.cancel("later reason")
        assert token.cancelled
        assert token.reason == "later reason"

    def test_uncancelled_token_is_harmless(self):
        result = execute(BATTING, Q1, governed_config(cancel_token=CancelToken()))
        baseline = execute(BATTING, Q1, EngineConfig.postgres())
        assert result.rows == baseline.rows


class TestDeadline:
    def test_virtual_slowdown_trips_deadline(self):
        """'slow' faults add deterministic virtual seconds: no sleeping."""
        plan = FaultPlan(
            [FaultSpec(site="scan", kind="slow", after=10, delay_seconds=99.0)]
        )
        config = governed_config(deadline_seconds=5.0, fault_plan=plan)
        with pytest.raises(BudgetExceededError) as info:
            execute(BATTING, Q1, config)
        error = info.value
        assert error.budget == "deadline_seconds"
        assert error.used > 5.0
        assert error.stats is not None

    def test_generous_deadline_is_harmless(self):
        result = execute(BATTING, Q1, governed_config(deadline_seconds=3600.0))
        baseline = execute(BATTING, Q1, EngineConfig.postgres())
        assert result.rows == baseline.rows
        assert result.stats.as_dict() == baseline.stats.as_dict()


class TestCacheBudget:
    def test_fail_mode_aborts(self):
        with pytest.raises(BudgetExceededError) as info:
            SmartIceberg(BATTING, max_cache_bytes=100).execute(Q1)
        error = info.value
        assert error.budget == "cache_bytes"
        assert error.used > 100
        assert error.stats is not None

    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_fallback_evicts_and_stays_correct(self, mode):
        baseline = SmartIceberg(BATTING, execution_mode=mode).execute(Q1)
        governed = SmartIceberg(
            BATTING,
            execution_mode=mode,
            max_cache_bytes=300,
            degradation="fallback",
        ).execute(Q1)
        assert governed.sorted_rows() == baseline.sorted_rows()
        assert any("evicting" in event for event in governed.stats.degradations)
        assert governed.stats.cache_bytes <= 300

    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_fallback_disables_cache_when_eviction_insufficient(self, mode):
        """A budget below one entry forces the cache fully off — the
        join must still return exactly the right rows (degraded "all"
        behaves like the baseline, never like a wrong answer)."""
        baseline = SmartIceberg(BATTING, execution_mode=mode).execute(Q1)
        governed = SmartIceberg(
            BATTING,
            execution_mode=mode,
            max_cache_bytes=1,
            degradation="fallback",
        ).execute(Q1)
        assert governed.sorted_rows() == baseline.sorted_rows()
        events = governed.stats.degradations
        assert any("evicting" in event for event in events)
        assert any("disabled" in event for event in events)
        assert governed.stats.cache_bytes == 0
        # Disabled cache means no memo assist: every binding recomputes.
        assert governed.stats.inner_evaluations >= baseline.stats.inner_evaluations

    def test_degradations_stay_out_of_counters(self):
        governed = SmartIceberg(
            BATTING, max_cache_bytes=1, degradation="fallback"
        ).execute(Q1)
        assert governed.stats.degradations
        assert "degradations" not in governed.stats.as_dict()


class TestOptimizerFallback:
    def test_qe_fault_falls_back_to_baseline_plan(self):
        baseline = SmartIceberg(BATTING).execute(Q1)
        plan = FaultPlan([FaultSpec(site="qe", kind="error")])
        system = SmartIceberg(BATTING, fault_plan=plan, degradation="fallback")
        optimized = system.optimize(Q1)
        assert optimized.nljp is None
        assert any(
            "memprune" in event for event in optimized.report.degradations
        )
        assert "DEGRADED" in optimized.explain()
        result = optimized.execute()
        assert result.sorted_rows() == baseline.sorted_rows()
        assert any("memprune" in event for event in result.stats.degradations)

    def test_qe_fault_fail_mode_raises(self):
        plan = FaultPlan([FaultSpec(site="qe", kind="error")])
        with pytest.raises(ReproError):
            SmartIceberg(BATTING, fault_plan=plan).optimize(Q1)

    def test_reducer_fault_falls_back_to_unreduced_block(self, basket_db):
        sql = """
            SELECT i1.item, i2.item, COUNT(*)
            FROM basket i1, basket i2
            WHERE i1.bid = i2.bid AND i1.item < i2.item
            GROUP BY i1.item, i2.item HAVING COUNT(*) >= 3
        """
        baseline = SmartIceberg(basket_db).execute(sql)
        assert baseline.stats.degradations == []
        plan = FaultPlan([FaultSpec(site="reducer", kind="error")])
        system = SmartIceberg(basket_db, fault_plan=plan, degradation="fallback")
        optimized = system.optimize(sql)
        assert optimized.report.apriori == []  # rolled back, not half-applied
        assert any(
            "apriori" in event for event in optimized.report.degradations
        )
        result = optimized.execute()
        assert result.sorted_rows() == baseline.sorted_rows()
        assert any("apriori" in event for event in result.stats.degradations)
