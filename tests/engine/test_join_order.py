"""Join-order parity and adversarial-permutation tests.

The tentpole's contract: every ``join_order`` setting — ``syntactic``
(the literal FROM order), ``greedy``, and ``dp`` — produces the
identical multiset of result rows in both execution modes; the
cost-based orders differ only in *work* (``join_pairs``,
``rows_scanned``).  The adversarial tests pin the headline win: on
multiway iceberg queries with a pathologically permuted FROM clause,
``dp`` cuts ``join_pairs`` by at least 5x at the BENCH seed.
"""

import re

import pytest

from repro.bench.figures import _batting_db
from repro.bench.record import RECORD_SEED
from repro.engine import EngineConfig, execute
from repro.engine.planner import plan_query
from repro.sql.parser import parse
from repro.storage.catalog import Database
from repro.storage.schema import TableSchema
from repro.storage.types import SqlType
from repro.workloads import figure1_queries

JOIN_ORDERS = ("syntactic", "greedy", "dp")

QUERIES = {name: q.sql for name, q in figure1_queries().items()}


def permute_from(sql: str) -> str:
    """Reverse the item list of every FROM clause in the SQL text."""

    def reverse(match: re.Match) -> str:
        items = [item.strip() for item in match.group(2).split(",")]
        return match.group(1) + ", ".join(reversed(items))

    return re.sub(r"(?m)^(\s*FROM )(.+)$", reverse, sql)


def run(db, sql, join_order, execution_mode="row"):
    return execute(
        db, sql, EngineConfig(join_order=join_order, execution_mode=execution_mode)
    )


@pytest.fixture(scope="module")
def small_db():
    return _batting_db(60, seed=RECORD_SEED)


@pytest.fixture(scope="module")
def bench_db():
    return _batting_db(120, seed=RECORD_SEED)


class TestQSuiteParity:
    """Identical rows for Q1-Q8 across all orders and both modes."""

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_rows_identical_across_orders_and_modes(self, small_db, name):
        sql = QUERIES[name]
        reference = run(small_db, sql, "syntactic")
        expected = reference.sorted_rows()
        for join_order in JOIN_ORDERS:
            for mode in ("row", "batch"):
                result = run(small_db, sql, join_order, mode)
                assert result.sorted_rows() == expected, (join_order, mode)
                assert result.stats.rows_output == reference.stats.rows_output, (
                    join_order,
                    mode,
                )

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_permuted_from_parity_and_no_worse(self, small_db, name):
        # On the worst (reversed) FROM permutation the cost-based orders
        # never evaluate more join pairs than the syntactic plan.
        sql = permute_from(QUERIES[name])
        assert sql != QUERIES[name]
        syntactic = run(small_db, sql, "syntactic")
        # Permutation must not change the answer either.
        assert (
            syntactic.sorted_rows()
            == run(small_db, QUERIES[name], "syntactic").sorted_rows()
        )
        for join_order in ("greedy", "dp"):
            result = run(small_db, sql, join_order)
            assert result.sorted_rows() == syntactic.sorted_rows(), join_order
            assert result.stats.join_pairs <= syntactic.stats.join_pairs, join_order


def cohort_skyband(attr_a: str, attr_b: str, k: int = 50) -> str:
    """Q1/Q2 stated as a three-relation join (Appendix D's multiway
    shape): ``M`` bridges each record to its (year, round) cohort, and
    the skyband condition compares against cohort members only.

    The FROM order below is the adversarial permutation: ``L, R`` share
    only the (non-equi) dominance conjuncts, so a syntactic plan starts
    with an O(n^2) nested loop, while the natural order joins the
    key-equal bridge ``M`` first.
    """
    return (
        "SELECT L.playerid, L.year, L.round, COUNT(*)\n"
        "FROM batting L, batting R, batting M\n"
        "WHERE L.playerid = M.playerid AND L.year = M.year AND L.round = M.round\n"
        "  AND M.year = R.year AND M.round = R.round\n"
        f"  AND L.{attr_a} <= R.{attr_a} AND L.{attr_b} <= R.{attr_b}\n"
        "GROUP BY L.playerid, L.year, L.round\n"
        f"HAVING COUNT(*) <= {k}"
    )


class TestAdversarialMultiway:
    """The acceptance headline: >= 5x fewer join_pairs under dp."""

    @pytest.mark.parametrize(
        "attrs", [("b_h", "b_hr"), ("b_hr", "b_sb")], ids=["Q1-shape", "Q2-shape"]
    )
    def test_dp_cuts_join_pairs_5x(self, bench_db, attrs):
        sql = cohort_skyband(*attrs)
        syntactic = run(bench_db, sql, "syntactic")
        for join_order in ("greedy", "dp"):
            result = run(bench_db, sql, join_order)
            assert result.sorted_rows() == syntactic.sorted_rows(), join_order
            assert result.stats.join_pairs * 5 <= syntactic.stats.join_pairs, (
                join_order,
                result.stats.join_pairs,
                syntactic.stats.join_pairs,
            )

    def test_batch_mode_counters_match_row_mode(self, bench_db):
        sql = cohort_skyband("b_h", "b_hr")
        row = run(bench_db, sql, "dp", "row")
        batch = run(bench_db, sql, "dp", "batch")
        assert row.sorted_rows() == batch.sorted_rows()
        assert row.stats.as_dict() == batch.stats.as_dict()


class TestExplain:
    def test_explain_shows_estimates(self, small_db):
        planned = plan_query(small_db, parse(QUERIES["Q1"]), EngineConfig())
        text = planned.explain()
        assert "est_rows=" in text
        assert "est_cost=" in text
        assert "actual_rows" not in text

    def test_explain_analyze_shows_actuals(self, small_db):
        planned = plan_query(small_db, parse(QUERIES["Q1"]), EngineConfig())
        text = planned.explain(analyze=True)
        assert "est_rows=" in text
        assert "actual_rows=" in text

    def test_estimated_cost_exposed(self, small_db):
        planned = plan_query(small_db, parse(QUERIES["Q1"]), EngineConfig())
        assert planned.estimated_cost() is not None
        assert planned.estimated_cost() > 0


class TestConfig:
    def test_join_order_validated(self):
        with pytest.raises(ValueError, match="join_order"):
            EngineConfig(join_order="random")

    def test_baselines_stay_syntactic(self):
        # The bench baselines reproduce the paper's measured systems,
        # which join in FROM order.
        assert EngineConfig.postgres().join_order == "syntactic"
        assert EngineConfig.vendor().join_order == "syntactic"
        assert EngineConfig.smart().join_order == "syntactic"
        assert EngineConfig().join_order == "dp"


class TestHashBuildSide:
    @staticmethod
    def _two_table_db():
        db = Database()
        big = db.create_table(
            "big", TableSchema.of(("k", SqlType.INTEGER), ("v", SqlType.INTEGER))
        )
        big.insert_many([(i % 25, i) for i in range(500)])
        small = db.create_table(
            "small", TableSchema.of(("k", SqlType.INTEGER), ("name", SqlType.TEXT))
        )
        small.insert_many([(i, f"n{i}") for i in range(25)])
        db.analyze()
        return db

    def test_builds_on_smaller_input(self):
        db = self._two_table_db()
        # Outer (small, 25 rows) is smaller than inner (big, 500 rows):
        # the hash table must be built on the outer side.
        sql = "SELECT s.name, b.v FROM small s, big b WHERE s.k = b.k"
        config = EngineConfig(
            join_policy="hash-first", join_order="syntactic", execution_mode="row"
        )
        planned = plan_query(db, parse(sql), config)
        assert "build=outer" in planned.explain()
        # And with the sides swapped the build stays on the (now inner)
        # smaller input, i.e. the traditional default.
        swapped = plan_query(
            db,
            parse("SELECT s.name, b.v FROM big b, small s WHERE s.k = b.k"),
            config,
        )
        assert "build=outer" not in swapped.explain()

    def test_build_side_does_not_change_rows(self):
        db = self._two_table_db()
        sql = "SELECT s.name, b.v FROM small s, big b WHERE s.k = b.k"
        reference = None
        for join_order in JOIN_ORDERS:
            for mode in ("row", "batch"):
                config = EngineConfig(
                    join_policy="hash-first",
                    join_order=join_order,
                    execution_mode=mode,
                )
                rows = execute(db, sql, config).sorted_rows()
                if reference is None:
                    reference = rows
                assert rows == reference, (join_order, mode)
