"""Unit tests for the columnar layout primitives.

Covers the :class:`Layout` resolution rules the fused-kernel compiler
leans on, the :class:`ColumnBatch` storage invariants (dictionary
round-trips, validity-bitmap NULL handling), NULL three-valued-logic
parity between row and columnar filters, and — the load-bearing one —
zone-map skip *soundness* under randomized predicates: a skipped chunk
must never change the result, for any predicate, on any data.
"""

import random

import pytest

from repro import EngineConfig
from repro.engine import execute
from repro.engine.layout import (
    Column,
    ColumnBatch,
    ColumnStore,
    Layout,
    numpy_or_none,
)
from repro.errors import PlanningError
from repro.storage import Database, SqlType, TableSchema

import dataclasses


class TestLayoutResolve:
    LAYOUT = Layout(
        [("a", "id"), ("a", "v"), ("b", "id"), ("b", "w"), (None, "anon")]
    )

    def test_qualified_resolution_is_exact(self):
        assert self.LAYOUT.resolve("a", "id") == 0
        assert self.LAYOUT.resolve("b", "id") == 2
        assert self.LAYOUT.resolve("b", "w") == 3

    def test_qualified_unknown_raises(self):
        with pytest.raises(PlanningError, match="unknown column"):
            self.LAYOUT.resolve("a", "w")
        with pytest.raises(PlanningError, match="unknown column"):
            self.LAYOUT.resolve("c", "id")

    def test_unqualified_unique_resolves(self):
        assert self.LAYOUT.resolve(None, "v") == 1
        assert self.LAYOUT.resolve(None, "anon") == 4

    def test_unqualified_ambiguous_raises(self):
        # "id" exists under both aliases: must not silently pick one.
        with pytest.raises(PlanningError, match="ambiguous"):
            self.LAYOUT.resolve(None, "id")

    def test_resolution_is_case_insensitive(self):
        assert self.LAYOUT.resolve("A", "ID") == 0
        assert self.LAYOUT.resolve(None, "V") == 1

    def test_try_resolve_returns_none_instead_of_raising(self):
        assert self.LAYOUT.try_resolve(None, "id") is None
        assert self.LAYOUT.try_resolve("c", "x") is None
        assert self.LAYOUT.try_resolve("a", "v") == 1

    def test_concat_shifts_positions(self):
        left = Layout([("a", "x")])
        right = Layout([("b", "x")])
        combined = left.concat(right)
        assert combined.resolve("b", "x") == 1
        with pytest.raises(PlanningError, match="ambiguous"):
            combined.resolve(None, "x")


class TestColumnBatchInvariants:
    def test_dict_encoding_round_trip(self):
        values = ["cubs", "sox", None, "cubs", "mets", None, "sox", "cubs"]
        column = Column.from_values(values)
        assert column.tolist() == values
        assert [column.value_at(i) for i in range(len(values))] == values

    def test_dict_dictionary_is_sorted_and_deduplicated(self):
        column = Column.from_values(["b", "a", "c", "a", "b"]).materialize()
        if column.kind == "dict":
            assert list(column.dictionary) == sorted(set(column.dictionary))
            assert len(set(column.dictionary)) == len(column.dictionary)
        assert column.tolist() == ["b", "a", "c", "a", "b"]

    def test_validity_bitmap_restores_nulls(self):
        values = [1, None, 3, None, 5]
        column = Column.from_values(values).materialize()
        assert column.tolist() == values
        assert column.value_at(1) is None
        assert column.value_at(2) == 3
        # Exact ints, not numpy scalars, at the row boundary.
        assert type(column.value_at(2)) is int

    def test_from_rows_to_rows_round_trip(self):
        rows = [
            (1, "a", 1.5, True, None),
            (2, None, None, False, "x"),
            (3, "b", -0.0, None, "y"),
        ]
        batch = ColumnBatch.from_rows(rows, 5)
        assert batch.to_rows() == rows
        assert len(batch) == 3

    def test_take_compress_slice_round_trips(self):
        rows = [(i, f"s{i % 3}", i * 0.5 if i % 4 else None) for i in range(20)]
        batch = ColumnBatch.from_rows(rows, 3)
        assert batch.slice(5, 12).to_rows() == rows[5:12]
        np = numpy_or_none()
        if np is not None:
            indices = np.asarray([3, 3, 0, 19], dtype=np.int64)
            assert batch.take(indices).to_rows() == [
                rows[3], rows[3], rows[0], rows[19]
            ]
            mask = np.asarray([i % 2 == 0 for i in range(20)])
            assert batch.compress(mask).to_rows() == rows[0::2]

    def test_column_store_zone_maps_cover_all_chunks(self):
        rows = [(i,) for i in range(100)]
        store = ColumnStore.from_rows(rows, ["v"])
        zones = store.zone_maps(32)
        assert len(zones) == 4  # ceil(100 / 32)
        first = zones[0][0]
        assert first.minimum == 0 and first.maximum == 31
        last = zones[3][0]
        assert last.minimum == 96 and last.maximum == 99
        assert last.non_null == 4 and last.nulls == 0


def _null_db():
    db = Database()
    schema = TableSchema.of(
        ("id", SqlType.INTEGER), ("v", SqlType.INTEGER), ("s", SqlType.TEXT)
    )
    table = db.create_table("t", schema)
    table.insert_many(
        [
            (1, 10, "a"),
            (2, None, "b"),
            (3, 5, None),
            (4, None, None),
            (5, 7, "a"),
            (6, 12, "c"),
        ]
    )
    return db


class TestNullThreeValuedLogicParity:
    """Columnar validity bitmaps must reproduce row-mode SQL 3VL."""

    PREDICATES = (
        "v > 6",
        "NOT (v > 6)",
        "v = 7 OR s = 'a'",
        "v IS NULL",
        "v IS NOT NULL",
        "s IS NULL AND v IS NULL",
        "v BETWEEN 5 AND 10",
        "NOT (v BETWEEN 5 AND 10)",
        "v > 6 AND s = 'a'",
        "v IN (5, 7)",
        "s IN ('a', 'c')",
    )

    @pytest.mark.parametrize("predicate", PREDICATES)
    def test_filter_parity_with_nulls(self, predicate):
        db = _null_db()
        sql = f"SELECT id, v, s FROM t WHERE {predicate}"
        row = execute(db, sql, EngineConfig.postgres())
        columnar = execute(
            db,
            sql,
            dataclasses.replace(
                EngineConfig.postgres(), execution_mode="columnar", batch_size=2
            ),
        )
        assert columnar.rows == row.rows, predicate
        assert columnar.stats.parity_dict() == row.stats.parity_dict(), predicate


def _random_predicate(rng):
    """One random predicate over (k, v, f, s); zone-analyzable or not."""
    comparisons = ("<", "<=", "=", "!=", ">=", ">")
    choices = []
    op = rng.choice(comparisons)
    choices.append(f"k {op} {rng.randrange(-5, 260)}")
    op = rng.choice(comparisons)
    choices.append(f"v {op} {rng.randrange(-50, 150)}")
    op = rng.choice(comparisons)
    choices.append(f"f {op} {rng.uniform(-2.0, 3.0):.3f}")
    choices.append(f"s = '{rng.choice('abcdexyz')}'")
    lo = rng.randrange(0, 200)
    choices.append(f"k BETWEEN {lo} AND {lo + rng.randrange(0, 60)}")
    choices.append(rng.choice(("v IS NULL", "v IS NOT NULL")))
    first = rng.choice(choices)
    if rng.random() < 0.5:
        second = rng.choice(choices)
        return f"({first}) {rng.choice(('AND', 'OR'))} ({second})"
    return first


class TestZoneMapSoundness:
    """Randomized skip soundness: a pruned chunk never changes results.

    500+ seeded trials over a table whose ``k`` column is clustered
    (insertion order) and whose ``v``/``f``/``s`` columns are not, with
    a tiny chunk size so nearly every selective predicate actually
    exercises the pruning path.  Row mode is the oracle: identical
    rows, identical folded counters, and the scanned/skipped split
    must sum exactly to the row-mode scan count.
    """

    N_TRIALS = 500
    SEED = 20170808

    @classmethod
    def _build_db(cls, rng):
        db = Database()
        schema = TableSchema.of(
            ("k", SqlType.INTEGER),
            ("v", SqlType.INTEGER),
            ("f", SqlType.FLOAT),
            ("s", SqlType.TEXT),
        )
        table = db.create_table("t", schema)
        rows = []
        for k in range(240):
            v = None if rng.random() < 0.1 else rng.randrange(0, 100)
            f = rng.uniform(-1.0, 2.0)
            s = None if rng.random() < 0.05 else rng.choice("abcdexyz")
            rows.append((k, v, f, s))
        table.insert_many(rows)
        return db

    def test_randomized_predicates_are_sound(self):
        rng = random.Random(self.SEED)
        db = self._build_db(rng)
        base = EngineConfig.postgres()
        columnar_config = dataclasses.replace(
            base, execution_mode="columnar", batch_size=16
        )
        skips_seen = 0
        for trial in range(self.N_TRIALS):
            predicate = _random_predicate(rng)
            sql = f"SELECT k, v, s FROM t WHERE {predicate}"
            row = execute(db, sql, base)
            columnar = execute(db, sql, columnar_config)
            assert columnar.rows == row.rows, f"trial {trial}: {predicate}"
            assert columnar.stats.parity_dict() == row.stats.parity_dict(), (
                f"trial {trial}: {predicate}"
            )
            stats = columnar.stats
            assert (
                stats.rows_scanned + stats.rows_skipped == row.stats.rows_scanned
            ), f"trial {trial}: {predicate}"
            if stats.chunks_skipped:
                skips_seen += 1
        # The trial distribution must actually exercise the skip path.
        assert skips_seen > 50, f"only {skips_seen} trials skipped chunks"
