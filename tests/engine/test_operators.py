"""Unit tests for individual physical operators."""


from repro.engine import operators as ops
from repro.engine.layout import Layout
from repro.storage import SqlType, Table, TableSchema


def make_table(rows):
    table = Table("t", TableSchema.of(("a", SqlType.INTEGER), ("b", SqlType.INTEGER)))
    table.insert_many(rows)
    return table


def run(op):
    ctx = ops.ExecutionContext()
    return list(op.execute(ctx)), ctx.stats


class TestScans:
    def test_table_scan(self):
        table = make_table([(1, 10), (2, 20)])
        rows, stats = run(ops.TableScan(table, "t"))
        assert rows == [(1, 10), (2, 20)]
        assert stats.rows_scanned == 2

    def test_table_scan_with_filter(self):
        table = make_table([(1, 10), (2, 20)])
        rows, _ = run(ops.TableScan(table, "t", lambda row, p: row[0] > 1))
        assert rows == [(2, 20)]

    def test_rows_source(self):
        source = ops.RowsSource([(1,), (2,)], ["x"], "s")
        rows, stats = run(source)
        assert rows == [(1,), (2,)]
        assert stats.rows_scanned == 2

    def test_index_point_scan(self):
        table = make_table([(1, 10), (2, 20), (2, 21)])
        index = table.create_index("ix", ["a"], kind="hash")
        scan = ops.IndexPointScan(table, "t", index, lambda row, p: (p["key"],))
        ctx = ops.ExecutionContext(params={"key": 2})
        assert sorted(scan.execute(ctx)) == [(2, 20), (2, 21)]
        assert ctx.stats.index_probes == 1

    def test_index_range_scan(self):
        table = make_table([(1, 10), (2, 20), (3, 30)])
        index = table.create_index("ix", ["a"], kind="sorted")
        scan = ops.IndexRangeScan(
            table, "t", index,
            low=lambda row, p: 2, high=None, low_strict=False, high_strict=False,
        )
        rows, _ = run(scan)
        assert rows == [(2, 20), (3, 30)]

    def test_index_range_scan_null_bound_yields_nothing(self):
        table = make_table([(1, 10)])
        index = table.create_index("ix", ["a"], kind="sorted")
        scan = ops.IndexRangeScan(
            table, "t", index,
            low=lambda row, p: None, high=None, low_strict=False, high_strict=False,
        )
        rows, _ = run(scan)
        assert rows == []


class TestJoins:
    def test_nested_loop_counts_pairs(self):
        left = ops.RowsSource([(1,), (2,)], ["x"], "l")
        right = ops.RowsSource([(1,), (2,), (3,)], ["y"], "r")
        join = ops.NestedLoopJoin(left, right, lambda row, p: row[0] == row[1])
        rows, stats = run(join)
        assert rows == [(1, 1), (2, 2)]
        assert stats.join_pairs == 6

    def test_hash_join_null_keys_never_match(self):
        left = ops.RowsSource([(1,), (None,)], ["x"], "l")
        right = ops.RowsSource([(1,), (None,)], ["y"], "r")
        join = ops.HashJoin(
            left, right,
            outer_key=lambda row, p: row[0],
            inner_key=lambda row, p: row[0],
        )
        rows, _ = run(join)
        assert rows == [(1, 1)]

    def test_hash_join_residual(self):
        left = ops.RowsSource([(1, 5), (1, 50)], ["x", "v"], "l")
        right = ops.RowsSource([(1, 10)], ["y", "w"], "r")
        join = ops.HashJoin(
            left, right,
            outer_key=lambda row, p: row[0],
            inner_key=lambda row, p: row[0],
            residual=lambda row, p: row[1] < row[3],
        )
        rows, _ = run(join)
        assert rows == [(1, 5, 1, 10)]


class TestPipeline:
    def test_filter(self):
        source = ops.RowsSource([(1,), (2,), (3,)], ["x"], "s")
        rows, _ = run(ops.Filter(source, lambda row, p: row[0] != 2))
        assert rows == [(1,), (3,)]

    def test_filter_unknown_rejects(self):
        source = ops.RowsSource([(None,), (1,)], ["x"], "s")
        rows, _ = run(ops.Filter(source, lambda row, p: None if row[0] is None else True))
        assert rows == [(1,)]

    def test_project(self):
        source = ops.RowsSource([(1, 2)], ["x", "y"], "s")
        project = ops.Project(
            source, [lambda row, p: row[1] * 10], Layout([(None, "out")])
        )
        rows, _ = run(project)
        assert rows == [(20,)]

    def test_distinct_preserves_order(self):
        source = ops.RowsSource([(2,), (1,), (2,), (1,)], ["x"], "s")
        rows, _ = run(ops.Distinct(source))
        assert rows == [(2,), (1,)]

    def test_sort_multi_key(self):
        source = ops.RowsSource([(1, "b"), (2, "a"), (1, "a")], ["n", "s"], "s")
        sort = ops.Sort(
            source,
            [lambda row, p: row[0], lambda row, p: row[1]],
            [True, False],
        )
        rows, _ = run(sort)
        assert rows == [(1, "b"), (1, "a"), (2, "a")]

    def test_limit(self):
        source = ops.RowsSource([(i,) for i in range(10)], ["x"], "s")
        rows, _ = run(ops.Limit(source, 3))
        assert rows == [(0,), (1,), (2,)]

    def test_limit_zero(self):
        source = ops.RowsSource([(1,)], ["x"], "s")
        rows, _ = run(ops.Limit(source, 0))
        assert rows == []

    def test_count_output(self):
        source = ops.RowsSource([(1,), (2,)], ["x"], "s")
        _, stats = run(ops.CountOutput(source))
        assert stats.rows_output == 2

    def test_describe_produces_tree(self):
        source = ops.RowsSource([(1,)], ["x"], "s")
        plan = ops.Limit(ops.Distinct(source), 1)
        text = plan.explain()
        assert "Limit" in text and "Distinct" in text


class TestHashAggregate:
    def test_group_and_aggregate(self):
        from repro.engine.aggregates import make_spec
        from repro.sql import ast

        source = ops.RowsSource(
            [("a", 1), ("a", 2), ("b", 3)], ["g", "v"], "s"
        )
        spec = make_spec(
            ast.FuncCall("SUM", (ast.ColumnRef(None, "v"),)),
            lambda row, p: row[1],
        )
        agg = ops.HashAggregate(
            source,
            [lambda row, p: row[0]],
            [spec],
            Layout([(None, "g"), (None, "s")]),
        )
        rows, stats = run(agg)
        assert sorted(rows) == [("a", 3), ("b", 3)]
        assert stats.aggregation_inputs == 3

    def test_scalar_aggregate_on_empty(self):
        from repro.engine.aggregates import make_spec
        from repro.sql import ast

        source = ops.RowsSource([], ["v"], "s")
        spec = make_spec(ast.FuncCall("COUNT", (ast.Star(),)), None)
        agg = ops.HashAggregate(source, [], [spec], Layout([(None, "c")]))
        rows, _ = run(agg)
        assert rows == [(0,)]
