"""Plan-shape tests: which physical operators the planner chooses."""

import pytest

from repro.engine import EngineConfig, explain, execute
from repro.storage import Database, SqlType, TableSchema


@pytest.fixture
def db() -> Database:
    database = Database()
    table = database.create_table(
        "perf",
        TableSchema.of(
            ("playerid", SqlType.INTEGER),
            ("teamid", SqlType.INTEGER),
            ("h", SqlType.INTEGER),
            ("hr", SqlType.INTEGER),
        ),
        primary_key=("playerid",),
    )
    table.insert_many((i, i % 4, i * 3 % 50, i * 7 % 30) for i in range(40))
    table.create_index("perf_team", ["teamid"], kind="hash")
    table.create_index("perf_h_hr", ["h", "hr"], kind="sorted")
    return database


class TestJoinChoice:
    def test_index_first_uses_hash_index(self, db):
        text = explain(
            db,
            "SELECT a.playerid FROM perf a, perf b WHERE a.teamid = b.teamid",
            EngineConfig(join_policy="index-first"),
        )
        assert "IndexNestedLoopJoin" in text

    def test_hash_first_uses_hash_join(self, db):
        text = explain(
            db,
            "SELECT a.playerid FROM perf a, perf b WHERE a.teamid = b.teamid",
            EngineConfig(join_policy="hash-first"),
        )
        assert "HashJoin" in text

    def test_inequality_join_uses_sorted_index(self, db):
        text = explain(
            db,
            "SELECT a.playerid FROM perf a, perf b WHERE a.h <= b.h",
            EngineConfig(join_policy="index-first"),
        )
        assert "SortedIndexRangeJoin" in text

    def test_nlj_only_policy(self, db):
        text = explain(
            db,
            "SELECT a.playerid FROM perf a, perf b WHERE a.teamid = b.teamid",
            EngineConfig(join_policy="nlj-only"),
        )
        assert "NestedLoopJoin" in text
        assert "IndexNestedLoopJoin" not in text

    def test_no_secondary_indexes_falls_back(self, db):
        text = explain(
            db,
            "SELECT a.playerid FROM perf a, perf b WHERE a.h <= b.h",
            EngineConfig(join_policy="index-first", use_secondary_indexes=False),
        )
        assert "SortedIndexRangeJoin" not in text

    def test_unknown_policy_rejected(self, db):
        from repro.errors import PlanningError

        with pytest.raises(PlanningError):
            explain(
                db,
                "SELECT a.playerid FROM perf a, perf b WHERE a.teamid = b.teamid",
                EngineConfig(join_policy="quantum"),
            )


class TestAppendixEPlanShape:
    """The baseline skyband plan matches Appendix E's structure:

    indexed nested loop join -> hash aggregation -> HAVING filter.
    """

    SQL = (
        "SELECT L.playerid, COUNT(*) FROM perf L, perf R "
        "WHERE L.h <= R.h AND L.hr <= R.hr AND (L.h < R.h OR L.hr < R.hr) "
        "GROUP BY L.playerid HAVING COUNT(*) <= 5"
    )

    def test_plan_shape(self, db):
        text = explain(db, self.SQL, EngineConfig.postgres())
        lines = text.splitlines()
        assert any("Filter [having]" in line for line in lines)
        assert any("HashAggregate" in line for line in lines)
        assert any("SortedIndexRangeJoin" in line for line in lines)
        # HAVING sits above the aggregate, which sits above the join.
        having_at = next(i for i, l in enumerate(lines) if "having" in l)
        agg_at = next(i for i, l in enumerate(lines) if "HashAggregate" in l)
        join_at = next(i for i, l in enumerate(lines) if "Join" in l)
        assert having_at < agg_at < join_at


class TestScanChoice:
    def test_point_scan_for_constant_equality(self, db):
        text = explain(
            db,
            "SELECT playerid FROM perf WHERE teamid = 2",
            EngineConfig(),
        )
        assert "IndexPointScan" in text

    def test_range_scan_for_constant_range(self, db):
        text = explain(
            db, "SELECT playerid FROM perf WHERE h >= 30", EngineConfig()
        )
        assert "IndexRangeScan" in text

    def test_full_scan_without_index(self, db):
        text = explain(
            db, "SELECT playerid FROM perf WHERE hr >= 10", EngineConfig()
        )
        assert "TableScan" in text

    def test_scan_results_agree(self, db):
        sql = "SELECT playerid FROM perf WHERE h >= 30 AND teamid = 2"
        fast = execute(db, sql, EngineConfig())
        slow = execute(db, sql, EngineConfig(use_secondary_indexes=False))
        assert sorted(fast.rows) == sorted(slow.rows)


class TestCtePlans:
    def test_cte_materialized_once(self, db):
        from repro.engine import plan_query
        from repro.sql import parse

        planned = plan_query(
            db,
            parse(
                "WITH x AS (SELECT playerid FROM perf) "
                "SELECT a.playerid FROM x a, x b WHERE a.playerid = b.playerid"
            ),
        )
        text = planned.explain()
        assert text.count("MaterializedScan x") == 2
