"""The worst-case-optimal trie join: iterators, gate, bit-identity.

The WCOJ path's contract mirrors the vectorized engine's: for every
query it is eligible for, it must produce *exactly* the pairwise
plan's rows (order included) — only the work counters may differ, and
on cyclic clusters they must differ in WCOJ's favor.
"""

import dataclasses
import itertools
import random

import pytest

from repro import EngineConfig, SmartIceberg
from repro.engine import execute
from repro.engine.governor import BudgetExceededError
from repro.engine.planner import plan_query
from repro.engine.wcoj import TrieIterator, WCOJTrieJoin, _leapfrog
from repro.sql.parser import parse
from repro.storage import Database, SqlType, TableSchema
from repro.workloads import (
    BaseballConfig,
    CyclicConfig,
    figure1_queries,
    make_batting_db,
    make_cyclic_db,
    square_query,
    triangle_hub_query,
    triangle_query,
)

CYCLIC = make_cyclic_db(CyclicConfig(n_edges=400, seed=7))
BATTING = make_batting_db(BaseballConfig(n_rows=150, seed=21))

ALGOS = ("auto", "pairwise", "wcoj")
MODES = ("row", "batch", "columnar")


def config_for(algo, mode="row"):
    return dataclasses.replace(
        EngineConfig.smart(), join_algo=algo, execution_mode=mode
    )


class _Stats:
    index_probes = 0


def _iter(tuples):
    it = TrieIterator(sorted(tuples), _Stats())
    it.open()
    return it


class TestTrieIterator:
    def test_walks_sorted_runs(self):
        it = TrieIterator(sorted([(1, 2), (1, 5), (3, 4)]), _Stats())
        it.open()
        assert it.key() == 1
        it.open()  # into children of 1
        assert it.key() == 2
        it.next()
        assert it.key() == 5
        it.next()
        assert it.at_end()
        it.up()
        it.next()
        assert it.key() == 3
        it.open()
        assert it.key() == 4

    def test_seek_past_end(self):
        it = _iter([(1,), (4,), (9,)])
        it.seek(10)
        assert it.at_end()

    def test_seek_lands_on_first_geq(self):
        it = _iter([(1,), (4,), (9,)])
        it.seek(3)
        assert it.key() == 4
        it.seek(4)  # seek to current key is a no-op position-wise
        assert it.key() == 4

    def test_next_skips_duplicate_prefixes(self):
        # Two tuples share first component 2: next() at depth 0 must
        # advance past the whole run, not one array slot.
        it = _iter([(1, 0), (2, 0), (2, 1), (3, 0)])
        it.seek(2)
        assert it.key() == 2
        it.next()
        assert it.key() == 3

    def test_probes_are_charged(self):
        stats = _Stats()
        it = TrieIterator(sorted([(1,), (2,)]), stats)
        it.open()  # root open bisects nothing
        assert stats.index_probes == 0
        it.seek(2)
        it.next()
        assert stats.index_probes == 2

    def test_leapfrog_intersects(self):
        rng = random.Random(2017)
        for _ in range(25):
            sets = [
                {rng.randrange(30) for _ in range(rng.randrange(1, 15))}
                for _ in range(3)
            ]
            iters = [_iter([(v,) for v in s]) for s in sets]
            assert list(_leapfrog(iters)) == sorted(set.intersection(*sets))

    def test_leapfrog_empty_input(self):
        iters = [_iter([(1,)]), _iter([])]
        assert list(_leapfrog(iters)) == []


class TestBitIdentity:
    @pytest.mark.parametrize(
        "sql",
        [triangle_query(), square_query(), triangle_hub_query()],
        ids=["triangle", "square", "hub"],
    )
    def test_cyclic_queries_all_modes_all_algos(self, sql):
        baseline = execute(CYCLIC, sql, config_for("pairwise"))
        for algo, mode in itertools.product(ALGOS, MODES):
            result = execute(CYCLIC, sql, config_for(algo, mode))
            assert result.rows == baseline.rows, (algo, mode)
            # Within one algorithm the three modes are counter-identical
            # (modulo the zone-map fold).
            row_twin = execute(CYCLIC, sql, config_for(algo))
            assert result.stats.parity_dict() == row_twin.stats.parity_dict()

    def test_auto_beats_pairwise_on_the_triangle(self):
        auto = execute(CYCLIC, triangle_query(), config_for("auto"))
        pairwise = execute(CYCLIC, triangle_query(), config_for("pairwise"))
        assert auto.rows == pairwise.rows
        assert auto.stats.join_pairs * 5 <= pairwise.stats.join_pairs

    @pytest.mark.parametrize("name", sorted(figure1_queries()))
    def test_paper_queries_every_mode_every_algo(self, name):
        sql = figure1_queries()[name].sql
        baseline = execute(BATTING, sql, config_for("pairwise"))
        for algo, mode in itertools.product(("auto", "wcoj"), MODES):
            result = execute(BATTING, sql, config_for(algo, mode))
            assert result.rows == baseline.rows, (algo, mode)

    def test_null_join_keys_never_match(self):
        db = Database()
        schema = TableSchema.of(("src", SqlType.INTEGER), ("dst", SqlType.INTEGER))
        table = db.create_table("edge", schema)
        table.insert_many(
            [(1, 2), (2, 3), (3, 1), (None, 1), (1, None), (None, None)]
        )
        pairwise = execute(db, triangle_query(), config_for("pairwise"))
        forced = execute(db, triangle_query(), config_for("wcoj"))
        assert forced.rows == pairwise.rows
        assert len(forced.rows) == 3  # the one triangle, from each corner

    def test_randomized_triangles_match_brute_force(self):
        rng = random.Random(99)
        edges = set()
        while len(edges) < 120:
            a, b = rng.randrange(18), rng.randrange(18)
            if a != b:
                edges.add((a, b))
        db = Database()
        schema = TableSchema.of(("src", SqlType.INTEGER), ("dst", SqlType.INTEGER))
        db.create_table("edge", schema).insert_many(sorted(edges))
        expected = sorted(
            e1 + e2 + e3
            for e1, e2, e3 in itertools.product(sorted(edges), repeat=3)
            if e1[1] == e2[0] and e2[1] == e3[0] and e3[1] == e1[0]
        )
        result = execute(
            db, "SELECT * FROM edge e1, edge e2, edge e3 "
            "WHERE e1.dst = e2.src AND e2.dst = e3.src AND e3.dst = e1.src",
            config_for("wcoj"),
        )
        assert sorted(result.rows) == expected


class TestGateAndPlan:
    def test_auto_gate_selects_wcoj_on_cyclic(self):
        explained = plan_query(
            CYCLIC, parse(triangle_query()), config_for("auto")
        ).explain()
        assert "WCOJTrieJoin" in explained
        assert "agm_pairs=" in explained
        assert "-> wcoj" in explained

    def test_auto_gate_reports_acyclic_clusters(self):
        sql = (
            "SELECT L.playerid FROM batting L, batting R "
            "WHERE L.year = R.year AND L.b_h > 100"
        )
        explained = plan_query(BATTING, parse(sql), config_for("auto")).explain()
        assert "wcoj:" in explained
        assert "-> pairwise" in explained
        assert "WCOJTrieJoin" not in explained

    def test_pairwise_algo_skips_the_gate_commit(self):
        explained = plan_query(
            CYCLIC, parse(triangle_query()), config_for("pairwise")
        ).explain()
        assert "WCOJTrieJoin" not in explained
        assert "not considered" in explained

    def test_gate_survives_to_dict(self):
        plan = plan_query(CYCLIC, parse(triangle_query()), config_for("auto"))
        nodes = [plan.root.to_dict()]
        seen = []
        while nodes:
            node = nodes.pop()
            if node.get("wcoj_gate"):
                seen.append(node["wcoj_gate"])
            nodes.extend(node.get("children", ()))
        assert any("agm_pairs=" in gate for gate in seen)

    def test_join_algo_validation(self):
        with pytest.raises(ValueError, match="join_algo"):
            EngineConfig(join_algo="bogus")
        with pytest.raises(ValueError, match="join_algo"):
            SmartIceberg(make_cyclic_db(CyclicConfig(n_edges=20)), join_algo="bogus")

    def test_strict_analysis_accepts_wcoj_plans(self):
        system = SmartIceberg(CYCLIC, join_algo="wcoj", analyze="strict")
        result = system.execute(triangle_query())
        assert result.rows == execute(
            CYCLIC, triangle_query(), config_for("pairwise")
        ).rows


class TestTrieCache:
    def test_square_query_hits_the_subtree_cache(self):
        result = execute(CYCLIC, square_query(), config_for("wcoj"))
        assert result.stats.cache_hits > 0
        assert result.stats.cache_rows > 0

    def test_triangle_never_caches(self):
        # Every triangle level's key is the full bound prefix, so no
        # level is cacheable and the counters must stay silent.
        result = execute(CYCLIC, triangle_query(), config_for("wcoj"))
        assert result.stats.cache_hits == 0
        assert result.stats.cache_misses == 0

    def test_cache_budget_fallback_degrades(self):
        config = dataclasses.replace(
            config_for("wcoj"), max_cache_bytes=64, degradation="fallback"
        )
        result = execute(CYCLIC, square_query(), config)
        assert any("wcoj-cache" in event for event in result.stats.degradations)
        assert result.rows == execute(
            CYCLIC, square_query(), config_for("pairwise")
        ).rows


class TestGovernor:
    def test_budget_trips_mid_leapfrog_with_partial_stats(self):
        config = dataclasses.replace(config_for("wcoj"), max_join_pairs=10)
        with pytest.raises(BudgetExceededError) as info:
            execute(CYCLIC, triangle_query(), config)
        assert info.value.stats.join_pairs >= 10
        assert info.value.stats.rows_scanned > 0

    def test_scan_budget_trips_during_trie_build(self):
        config = dataclasses.replace(config_for("wcoj"), max_rows_scanned=100)
        with pytest.raises(BudgetExceededError) as info:
            execute(CYCLIC, triangle_query(), config)
        assert info.value.stats.rows_scanned >= 100
        assert info.value.stats.join_pairs == 0
