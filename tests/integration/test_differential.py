"""Differential tests: Smart-Iceberg vs baselines on the paper's workloads.

Every configuration of the optimizer must agree with every baseline
planner on every representative query — the strongest end-to-end
correctness statement this repo makes.
"""

import pytest

from repro import EngineConfig, SmartIceberg
from repro.engine import execute
from repro.storage import Database
from repro.workloads import (
    BaseballConfig,
    BasketConfig,
    complex_query,
    discount_query,
    figure1_queries,
    load_baskets,
    load_discount_schema,
    make_batting_db,
    market_basket_query,
    pairs_query,
    skyband_query,
)
from repro.workloads.baseball import load_unpivoted


BATTING = make_batting_db(BaseballConfig(n_rows=600, seed=21))

SMART_CONFIGS = {
    "all": {},
    "pruning": dict(apriori=False, memo=False),
    "memo": dict(apriori=False, pruning=False),
    "apriori": dict(memo=False, pruning=False),
}


def assert_all_agree(db, sql):
    reference = execute(db, sql, EngineConfig.postgres()).sorted_rows()
    vendor = execute(db, sql, EngineConfig.vendor()).sorted_rows()
    assert vendor == reference, "vendor baseline disagrees"
    nlj = execute(db, sql, EngineConfig(join_policy="nlj-only")).sorted_rows()
    assert nlj == reference, "nlj-only baseline disagrees"
    for label, toggles in SMART_CONFIGS.items():
        result = SmartIceberg(db, **toggles).execute(sql).sorted_rows()
        assert result == reference, f"smart[{label}] disagrees"
    return reference


class TestFigure1Queries:
    @pytest.mark.parametrize("name", [f"Q{i}" for i in range(1, 9)])
    def test_query_agreement(self, name):
        query = figure1_queries()[name]
        rows = assert_all_agree(BATTING, query.sql)
        # Sanity: thresholds chosen so queries return something at this
        # scale (except possibly the stricter pairs variants).
        if name in ("Q1", "Q2", "Q3", "Q8"):
            assert len(rows) > 0


class TestSkybandVariants:
    @pytest.mark.parametrize("k", [1, 10, 100])
    def test_threshold_sweep(self, k):
        assert_all_agree(BATTING, skyband_query("b_h", "b_hr", k))

    def test_strong_dominance(self):
        assert_all_agree(
            BATTING, skyband_query("b_h", "b_hr", 25, strict_form="strong")
        )

    def test_monotone_variant(self):
        sql = (
            "SELECT L.playerid, L.year, L.round, COUNT(*) "
            "FROM batting L, batting R "
            "WHERE L.b_h <= R.b_h AND L.b_hr <= R.b_hr "
            "GROUP BY L.playerid, L.year, L.round HAVING COUNT(*) >= 550"
        )
        assert_all_agree(BATTING, sql)


class TestComplexVariants:
    DB = None

    @classmethod
    def setup_class(cls):
        cls.DB = Database()
        load_unpivoted(cls.DB, BaseballConfig(n_rows=600, seed=21), n_categories=4)

    @pytest.mark.parametrize("threshold", [2, 10, 40])
    def test_threshold_sweep(self, threshold):
        assert_all_agree(self.DB, complex_query(threshold))


class TestBasketAndDiscount:
    def test_market_basket(self):
        db = Database()
        load_baskets(db, BasketConfig(n_baskets=300, n_items=80, seed=13))
        rows = assert_all_agree(db, market_basket_query(support=5))
        assert len(rows) > 0

    def test_discount_query(self):
        db = Database()
        load_discount_schema(db, n_baskets=120, n_items=15, n_discounts=5)
        assert_all_agree(db, discount_query(threshold=3))


class TestPairsVariants:
    @pytest.mark.parametrize("agg", ["AVG", "SUM"])
    def test_agg_variants(self, agg):
        assert_all_agree(BATTING, pairs_query(c=2, k=15, agg=agg))
