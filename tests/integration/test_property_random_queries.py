"""Property-based differential testing on randomly generated iceberg
queries.

Hypothesis draws a random instance and a random single-block iceberg
query (join condition, grouping choice, aggregate, threshold); the
Smart-Iceberg optimizer with all techniques on must return exactly the
baseline's rows.  This exercises every safety check: when a technique
is unsafe the optimizer must *refuse* it, and when it applies, the
rewrite must be equivalence-preserving.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import SmartIceberg
from repro.engine import EngineConfig, execute
from repro.storage import Database, SqlType, TableSchema


rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),   # g: group attribute
        st.integers(min_value=0, max_value=4),   # j1
        st.integers(min_value=0, max_value=4),   # j2
        st.integers(min_value=0, max_value=9),   # v: value attribute
    ),
    min_size=1,
    max_size=24,
)

JOIN_CONJUNCTS = [
    "L.j1 = R.j1",
    "L.j1 <= R.j1",
    "L.j2 < R.j2",
    "L.j1 <= R.j1 AND L.j2 <= R.j2",
    "L.j1 = R.j1 AND L.j2 < R.j2",
    "L.j1 + L.j2 <= R.j1",
]

HAVINGS = [
    "COUNT(*) >= {c}",
    "COUNT(*) <= {c}",
    "SUM(R.v) >= {c}",
    "SUM(R.v) <= {c}",
    "MAX(R.v) >= {c}",
    "MIN(R.v) <= {c}",
    "COUNT(DISTINCT R.v) >= {c}",
]

GROUPINGS = [
    ("L.id", "L.id"),               # superkey grouping (pruning eligible)
    ("L.g", "L.g"),                 # coarse grouping (combining mode)
    ("L.id, R.g", "L.id, R.g"),     # grouped inner
    ("L.g, R.g", "L.g, R.g"),
]


def build_db(rows) -> Database:
    db = Database()
    table = db.create_table(
        "t",
        TableSchema.of(
            ("id", SqlType.INTEGER),
            ("g", SqlType.INTEGER),
            ("j1", SqlType.INTEGER),
            ("j2", SqlType.INTEGER),
            ("v", SqlType.INTEGER),
        ),
        primary_key=("id",),
    )
    db.declare_domain("t", "v", lower=0)
    table.insert_many((i,) + row for i, row in enumerate(rows))
    return db


@given(
    rows=rows_strategy,
    join_index=st.integers(0, len(JOIN_CONJUNCTS) - 1),
    having_index=st.integers(0, len(HAVINGS) - 1),
    grouping_index=st.integers(0, len(GROUPINGS) - 1),
    threshold=st.integers(0, 6),
)
@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_iceberg_query_agreement(
    rows, join_index, having_index, grouping_index, threshold
):
    db = build_db(rows)
    select_cols, group_cols = GROUPINGS[grouping_index]
    sql = (
        f"SELECT {select_cols}, COUNT(*) FROM t L, t R "
        f"WHERE {JOIN_CONJUNCTS[join_index]} "
        f"GROUP BY {group_cols} "
        f"HAVING {HAVINGS[having_index].format(c=threshold)}"
    )
    baseline = execute(db, sql, EngineConfig.postgres()).sorted_rows()
    smart = SmartIceberg(db).execute(sql).sorted_rows()
    assert smart == baseline, sql


@given(
    rows=rows_strategy,
    threshold=st.integers(0, 5),
    monotone=st.booleans(),
)
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_lambda_aggregates_agreement(rows, threshold, monotone):
    """Queries whose SELECT carries AVG/SUM/MIN/MAX over the inner side."""
    db = build_db(rows)
    op = ">=" if monotone else "<="
    sql = (
        "SELECT L.id, AVG(R.v), MAX(R.v), COUNT(*) FROM t L, t R "
        "WHERE L.j1 <= R.j1 AND L.j2 <= R.j2 "
        "GROUP BY L.id "
        f"HAVING COUNT(*) {op} {threshold}"
    )
    baseline = execute(db, sql, EngineConfig.postgres()).sorted_rows()
    smart = SmartIceberg(db).execute(sql).sorted_rows()
    assert smart == baseline, sql


@given(rows=rows_strategy, threshold=st.integers(1, 4))
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_self_join_equality_groups(rows, threshold):
    """Market-basket-shaped random queries (a-priori territory)."""
    db = build_db(rows)
    sql = (
        "SELECT a.g, b.g, COUNT(*) FROM t a, t b "
        "WHERE a.j1 = b.j1 AND a.g < b.g "
        "GROUP BY a.g, b.g "
        f"HAVING COUNT(*) >= {threshold}"
    )
    baseline = execute(db, sql, EngineConfig.postgres()).sorted_rows()
    smart = SmartIceberg(db).execute(sql).sorted_rows()
    assert smart == baseline, sql
