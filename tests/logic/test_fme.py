"""Tests for Fourier-Motzkin elimination."""

import random
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.logic import fme
from repro.logic.formula import ge, gt, le, lt, eq
from repro.logic.terms import LinearTerm

x = LinearTerm.variable("x")
y = LinearTerm.variable("y")
z = LinearTerm.variable("z")
c = LinearTerm.const


class TestEliminateVariable:
    def test_paper_example(self):
        """Eq. (1): x >= y+500, x+10 <= z, x <= 5y+100."""
        constraints = [
            ge(x, y + c(500)),
            le(x + c(10), z),
            le(x, y.scale(5) + c(100)),
        ]
        reduced = fme.eliminate_variable(constraints, "x")
        assert reduced is not None
        # Expected: y+500 <= z-10 and y+500 <= 5y+100.
        assert le(y + c(500), z - c(10)) in reduced
        assert le(y + c(500), y.scale(5) + c(100)) in reduced

    def test_bounds_only_one_side_dropped(self):
        reduced = fme.eliminate_variable([ge(x, y)], "x")
        assert reduced == []

    def test_strictness_propagates(self):
        # y < x and x <= z  =>  y < z.
        reduced = fme.eliminate_variable([lt(y, x), le(x, z)], "x")
        assert reduced == [lt(y, z)]

    def test_equality_substitution(self):
        # x = y + 1 and x < z  =>  y + 1 < z.
        reduced = fme.eliminate_variable([eq(x, y + c(1)), lt(x, z)], "x")
        assert reduced == [lt(y + c(1), z)]

    def test_detects_contradiction(self):
        # x < y and y < x  =>  y < y: unsat.
        reduced = fme.eliminate_variable([lt(x, y), lt(y, x)], "x")
        assert reduced is None

    def test_untouched_constraints_kept(self):
        reduced = fme.eliminate_variable([lt(y, z), lt(x, y), lt(y, x)], "x")
        assert reduced is None or lt(y, z) in reduced


class TestSatisfiability:
    def test_simple_sat(self):
        assert fme.is_satisfiable([lt(x, y), lt(y, z)])

    def test_simple_unsat(self):
        assert not fme.is_satisfiable([lt(x, y), lt(y, x)])

    def test_cycle_unsat(self):
        assert not fme.is_satisfiable([lt(x, y), lt(y, z), lt(z, x)])

    def test_nonstrict_cycle_sat(self):
        assert fme.is_satisfiable([le(x, y), le(y, z), le(z, x)])

    def test_strict_vs_equal(self):
        assert not fme.is_satisfiable([eq(x, y), lt(x, y)])

    def test_constant_contradiction(self):
        assert not fme.is_satisfiable([lt(c(1), c(0))])

    def test_empty_is_sat(self):
        assert fme.is_satisfiable([])

    def test_bounded_interval(self):
        assert fme.is_satisfiable([ge(x, c(0)), le(x, c(10)), gt(x, c(9))])
        assert not fme.is_satisfiable([ge(x, c(0)), le(x, c(10)), gt(x, c(10))])


class TestImplies:
    def test_transitivity(self):
        assert fme.implies([lt(x, y), lt(y, z)], lt(x, z))

    def test_no_implication(self):
        assert not fme.implies([lt(x, y)], lt(y, x))

    def test_weakening(self):
        assert fme.implies([lt(x, y)], le(x, y))
        assert not fme.implies([le(x, y)], lt(x, y))

    def test_equality_conclusion(self):
        assert fme.implies([le(x, y), le(y, x)], eq(x, y))

    def test_scaled_conclusion(self):
        # x <= y implies 2x <= 2y.
        assert fme.implies([le(x, y)], le(x.scale(2), y.scale(2)))


class TestRemoveRedundant:
    def test_removes_implied(self):
        kept = fme.remove_redundant([lt(x, y), lt(y, z), lt(x, z)])
        assert lt(x, z) not in kept
        assert len(kept) == 2

    def test_keeps_independent(self):
        constraints = [lt(x, y), lt(z, x)]
        assert sorted(map(repr, fme.remove_redundant(constraints))) == sorted(
            map(repr, constraints)
        )

    def test_removes_weaker_duplicate(self):
        kept = fme.remove_redundant([lt(x, y), le(x, y)])
        assert kept == [lt(x, y)]


@st.composite
def random_conjunction(draw):
    """A random small conjunction over x, y, z with integer bounds."""
    variables = [x, y, z]
    n = draw(st.integers(min_value=1, max_value=4))
    constraints = []
    for _ in range(n):
        left = draw(st.sampled_from(variables))
        right = draw(st.sampled_from(variables + [c(draw(st.integers(-3, 3)))]))
        op = draw(st.sampled_from([lt, le]))
        constraints.append(op(left, right))
    return constraints


@given(random_conjunction())
@settings(max_examples=150, deadline=None)
def test_elimination_preserves_satisfiability_witnesses(constraints):
    """Property: any witness of the original satisfies the projection.

    (FME soundness direction, checked on random rational samples.)
    """
    reduced = fme.eliminate_variable(constraints, "x")
    rng = random.Random(0)
    for _ in range(30):
        assignment = {
            v: Fraction(rng.randint(-6, 6), rng.randint(1, 3))
            for v in ("x", "y", "z")
        }
        if all(constraint.evaluate(assignment) for constraint in constraints):
            assert reduced is not None
            assert all(constraint.evaluate(assignment) for constraint in reduced)


@given(random_conjunction())
@settings(max_examples=100, deadline=None)
def test_unsat_never_has_witness(constraints):
    """Property: if FME says unsat, no random sample satisfies it."""
    if fme.is_satisfiable(constraints):
        return
    rng = random.Random(1)
    for _ in range(50):
        assignment = {
            v: Fraction(rng.randint(-6, 6), rng.randint(1, 3))
            for v in ("x", "y", "z")
        }
        assert not all(constraint.evaluate(assignment) for constraint in constraints)
