"""Tests for the formula algebra: NNF, DNF, evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.logic import formula as fm
from repro.logic.terms import LinearTerm

x = LinearTerm.variable("x")
y = LinearTerm.variable("y")


class TestConstraints:
    def test_negate_strict(self):
        atom = fm.lt(x, y)  # x < y
        negated = atom.negate()  # y <= x
        assert isinstance(negated, fm.Constraint) and negated.op == "<="

    def test_negate_nonstrict(self):
        negated = fm.le(x, y).negate()
        assert negated.op == "<"

    def test_negate_equality_is_disjunction(self):
        negated = fm.eq(x, y).negate()
        assert isinstance(negated, fm.Or) and len(negated.children) == 2

    def test_constant_truth(self):
        assert fm.lt(LinearTerm.const(1), LinearTerm.const(2)).truth() is True
        assert fm.lt(LinearTerm.const(2), LinearTerm.const(1)).truth() is False
        assert fm.lt(x, y).truth() is None

    def test_bad_operator_rejected(self):
        from repro.errors import QuantifierEliminationError

        with pytest.raises(QuantifierEliminationError):
            fm.Constraint(x, ">")


class TestConstructors:
    def test_conj_flattens(self):
        inner = fm.conj((fm.lt(x, y), fm.lt(y, x)))
        outer = fm.conj((inner, fm.le(x, y)))
        assert isinstance(outer, fm.And) and len(outer.children) == 3

    def test_conj_false_short_circuit(self):
        assert fm.conj((fm.lt(x, y), fm.FALSE)) == fm.FALSE

    def test_conj_drops_true(self):
        assert fm.conj((fm.TRUE, fm.lt(x, y))) == fm.lt(x, y)

    def test_conj_empty_is_true(self):
        assert fm.conj(()) == fm.TRUE

    def test_conj_dedups(self):
        assert fm.conj((fm.lt(x, y), fm.lt(x, y))) == fm.lt(x, y)

    def test_disj_true_short_circuit(self):
        assert fm.disj((fm.TRUE, fm.lt(x, y))) == fm.TRUE

    def test_disj_empty_is_false(self):
        assert fm.disj(()) == fm.FALSE


class TestNNF:
    def test_double_negation(self):
        inner = fm.lt(x, y)
        assert fm.to_nnf(fm.Not(fm.Not(inner))) == inner

    def test_de_morgan_and(self):
        negated = fm.negate(fm.conj((fm.lt(x, y), fm.le(y, x))))
        assert isinstance(negated, fm.Or)

    def test_de_morgan_or(self):
        negated = fm.negate(fm.disj((fm.lt(x, y), fm.le(y, x))))
        assert isinstance(negated, fm.And)


class TestDNF:
    def test_atom(self):
        assert fm.to_dnf(fm.lt(x, y)) == [[fm.lt(x, y)]]

    def test_distribution(self):
        # (a OR b) AND c -> [a, c], [b, c]
        a, b, c = fm.lt(x, y), fm.lt(y, x), fm.le(x, y)
        dnf = fm.to_dnf(fm.conj((fm.disj((a, b)), c)))
        assert len(dnf) == 2
        assert all(c in conj for conj in dnf)

    def test_true_false(self):
        assert fm.to_dnf(fm.TRUE) == [[]]
        assert fm.to_dnf(fm.FALSE) == []

    def test_constant_atoms_folded(self):
        true_atom = fm.lt(LinearTerm.const(0), LinearTerm.const(1))
        assert fm.to_dnf(true_atom) == [[]]


values = st.integers(min_value=-5, max_value=5)


@given(values, values)
def test_evaluate_matches_python(a, b):
    assignment = {"x": a, "y": b}
    assert fm.evaluate(fm.lt(x, y), assignment) == (a < b)
    assert fm.evaluate(fm.le(x, y), assignment) == (a <= b)
    assert fm.evaluate(fm.eq(x, y), assignment) == (a == b)
    assert fm.evaluate(fm.ne(x, y), assignment) == (a != b)
    assert fm.evaluate(fm.gt(x, y), assignment) == (a > b)
    assert fm.evaluate(fm.ge(x, y), assignment) == (a >= b)


@given(values, values)
def test_nnf_preserves_semantics(a, b):
    assignment = {"x": a, "y": b}
    original = fm.Not(
        fm.conj((fm.lt(x, y), fm.disj((fm.eq(x, y), fm.le(y, x)))))
    )
    assert fm.evaluate(original, assignment) == fm.evaluate(
        fm.to_nnf(original), assignment
    )


@given(values, values)
def test_dnf_preserves_semantics(a, b):
    assignment = {"x": a, "y": b}
    original = fm.conj(
        (fm.disj((fm.lt(x, y), fm.eq(x, y))), fm.Not(fm.lt(y, x)))
    )
    dnf = fm.to_dnf(original)
    dnf_value = any(
        all(atom.evaluate(assignment) for atom in conj) for conj in dnf
    )
    assert fm.evaluate(original, assignment) == dnf_value
