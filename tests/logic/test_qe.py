"""Tests for quantifier elimination (the paper's UE/DE/EE procedure)."""

import random
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.logic import formula as fm
from repro.logic.qe import (
    eliminate_exists,
    eliminate_forall,
    entails_formula,
    equivalent,
    forall_implies,
    simplify,
)
from repro.logic.terms import LinearTerm

x = LinearTerm.variable("x")
y = LinearTerm.variable("y")
xp = LinearTerm.variable("xp")
yp = LinearTerm.variable("yp")
xr = LinearTerm.variable("xr")
yr = LinearTerm.variable("yr")
c = LinearTerm.const


class TestEliminateExists:
    def test_simple_projection(self):
        # exists xr: x < xr and xr < y  <=>  x < y.
        result = eliminate_exists(fm.conj((fm.lt(x, xr), fm.lt(xr, y))), ["xr"])
        assert equivalent(result, fm.lt(x, y))

    def test_unbounded_variable_vanishes(self):
        # exists xr: x < xr  <=>  TRUE.
        result = eliminate_exists(fm.lt(x, xr), ["xr"])
        assert equivalent(result, fm.TRUE)

    def test_disjunction_distributes(self):
        # exists xr: (x < xr < y) or (y < xr < x)  <=>  x<y or y<x.
        branch1 = fm.conj((fm.lt(x, xr), fm.lt(xr, y)))
        branch2 = fm.conj((fm.lt(y, xr), fm.lt(xr, x)))
        result = eliminate_exists(fm.disj((branch1, branch2)), ["xr"])
        assert equivalent(result, fm.ne(x, y))

    def test_no_variables_is_nnf_passthrough(self):
        original = fm.Not(fm.lt(x, y))
        assert eliminate_exists(original, []) == fm.to_nnf(original)

    def test_unsat_branch_dropped(self):
        contradiction = fm.conj((fm.lt(xr, x), fm.lt(x, xr)))
        assert eliminate_exists(contradiction, ["xr"]) == fm.FALSE


class TestEliminateForall:
    def test_forall_unbounded_false(self):
        # forall xr: x < xr is false (xr can be tiny).
        assert equivalent(eliminate_forall(fm.lt(x, xr), ["xr"]), fm.FALSE)

    def test_forall_tautology(self):
        # forall xr: xr <= xr.
        assert equivalent(eliminate_forall(fm.le(xr, xr), ["xr"]), fm.TRUE)


class TestExample11:
    """Section 5.2's worked derivation: simplified skyband condition."""

    def test_derivation(self):
        theta_new = fm.conj((fm.lt(x, xr), fm.lt(y, yr)))
        theta_cached = fm.conj((fm.lt(xp, xr), fm.lt(yp, yr)))
        derived = simplify(
            forall_implies(theta_cached, theta_new, ["xr", "yr"])
        )
        expected = fm.conj((fm.le(x, xp), fm.le(y, yp)))
        assert equivalent(derived, expected)


class TestAppendixB:
    """The full strict-dominance derivation of Appendix B."""

    def test_derivation(self):
        def theta(a, b):
            return fm.conj(
                (
                    fm.le(a, xr),
                    fm.le(b, yr),
                    fm.disj((fm.lt(a, xr), fm.lt(b, yr))),
                )
            )

        derived = simplify(
            forall_implies(theta(xp, yp), theta(x, y), ["xr", "yr"])
        )
        expected = fm.conj((fm.le(x, xp), fm.le(y, yp)))
        assert equivalent(derived, expected)


class TestSimplify:
    def test_removes_redundant_constraint(self):
        original = fm.conj((fm.lt(x, y), fm.le(x, y)))
        assert simplify(original) == fm.lt(x, y)

    def test_detects_false(self):
        original = fm.conj((fm.lt(x, y), fm.lt(y, x)))
        assert simplify(original) == fm.FALSE

    def test_detects_true(self):
        assert simplify(fm.disj((fm.le(x, y), fm.lt(y, x)))) == fm.TRUE

    def test_absorbs_stronger_disjunct(self):
        stronger = fm.conj((fm.lt(x, y), fm.lt(x, c(0))))
        weaker = fm.lt(x, y)
        assert simplify(fm.disj((stronger, weaker))) == weaker

    def test_merges_equality_pairs(self):
        original = fm.conj((fm.le(x, y), fm.le(y, x)))
        result = simplify(original)
        assert isinstance(result, fm.Constraint) and result.op == "="


class TestEntailment:
    def test_entails(self):
        assert entails_formula(fm.lt(x, y), fm.le(x, y))
        assert not entails_formula(fm.le(x, y), fm.lt(x, y))

    def test_equivalent_symmetric(self):
        a = fm.conj((fm.le(x, y), fm.le(y, x)))
        b = fm.eq(x, y)
        assert equivalent(a, b)
        assert equivalent(b, a)


@st.composite
def small_formula(draw):
    """Random formulas over (x, y) and universal (xr)."""
    variables = [x, y, xr]
    atoms = []
    for _ in range(draw(st.integers(1, 3))):
        left = draw(st.sampled_from(variables))
        right = draw(
            st.sampled_from(variables + [c(draw(st.integers(-2, 2)))])
        )
        op = draw(st.sampled_from([fm.lt, fm.le, fm.eq]))
        atoms.append(op(left, right))
    if draw(st.booleans()) and len(atoms) > 1:
        return fm.disj((atoms[0], fm.conj(atoms[1:])))
    return fm.conj(atoms)


@given(small_formula())
@settings(max_examples=60, deadline=None)
def test_exists_elimination_semantics(formula):
    """Property: QE result agrees with a sampled existential check.

    For each sample of the free variables, `exists xr: formula` is
    approximated by trying many xr values; the eliminated formula must
    be true whenever a witness was found, and (over the sampled grid)
    false when no witness exists among a dense rational sample.
    """
    eliminated = eliminate_exists(formula, ["xr"])
    rng = random.Random(7)
    witnesses = [Fraction(n, 2) for n in range(-12, 13)]
    for _ in range(15):
        assignment = {
            "x": Fraction(rng.randint(-4, 4)),
            "y": Fraction(rng.randint(-4, 4)),
        }
        found = any(
            fm.evaluate(formula, {**assignment, "xr": w}) for w in witnesses
        )
        eliminated_value = fm.evaluate(eliminated, assignment)
        if found:
            assert eliminated_value, (
                f"witness exists but eliminated formula is false: "
                f"{formula} -> {eliminated} at {assignment}"
            )
