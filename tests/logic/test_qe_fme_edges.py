"""Edge cases for the QE/FME stack (satellite c).

Strict inequalities, variables unbounded on one side (case iii of the
paper's EE step), and degenerate single-variable conjunctions.
"""

from repro.logic import fme, qe
from repro.logic.formula import (
    FALSE,
    TRUE,
    conj,
    disj,
    eq,
    ge,
    gt,
    le,
    lt,
)
from repro.logic.terms import LinearTerm


var = LinearTerm.variable
const = LinearTerm.const


class TestStrictInequalities:
    def test_strict_cross_constraint_stays_strict(self):
        # a < x ∧ x < b  --[eliminate x]-->  a < b
        reduced = fme.eliminate_variable(
            [lt(var("a"), var("x")), lt(var("x"), var("b"))], "x"
        )
        assert reduced is not None and len(reduced) == 1
        assert reduced[0].op == "<"
        assert reduced[0].term.variables() == {"a", "b"}

    def test_mixed_strictness_cross_is_strict(self):
        # a <= x ∧ x < b  -->  a < b (strict wins).
        reduced = fme.eliminate_variable(
            [le(var("a"), var("x")), lt(var("x"), var("b"))], "x"
        )
        assert reduced is not None and reduced[0].op == "<"

    def test_non_strict_cross_is_non_strict(self):
        reduced = fme.eliminate_variable(
            [le(var("a"), var("x")), le(var("x"), var("b"))], "x"
        )
        assert reduced is not None and reduced[0].op == "<="

    def test_self_strict_comparison_unsatisfiable(self):
        assert not fme.is_satisfiable([lt(var("x"), var("x"))])

    def test_strict_cycle_unsatisfiable_but_weak_cycle_not(self):
        strict = [lt(var("x"), var("y")), lt(var("y"), var("x"))]
        weak = [le(var("x"), var("y")), le(var("y"), var("x"))]
        assert not fme.is_satisfiable(strict)
        assert fme.is_satisfiable(weak)

    def test_strict_implies_weak_but_not_conversely(self):
        strict = lt(var("x"), var("y"))
        weak = le(var("x"), var("y"))
        assert fme.implies([strict], weak)
        assert not fme.implies([weak], strict)

    def test_open_interval_above_closed_point_unsat(self):
        # x < 5 ∧ x >= 5
        assert not fme.is_satisfiable(
            [lt(var("x"), const(5)), ge(var("x"), const(5))]
        )


class TestUnboundedVariables:
    def test_one_sided_bounds_are_dropped(self):
        # Only lower bounds: every constraint on x vanishes (case iii).
        reduced = fme.eliminate_variable(
            [ge(var("x"), const(3)), ge(var("x"), var("y"))], "x"
        )
        assert reduced == []

    def test_unrelated_constraints_survive(self):
        reduced = fme.eliminate_variable(
            [ge(var("x"), const(3)), le(var("y"), const(2))], "x"
        )
        assert reduced is not None and len(reduced) == 1
        assert reduced[0].term.variables() == {"y"}

    def test_exists_with_unbounded_variable_is_true(self):
        # ∃x: x > y holds for every y over ℝ.
        assert qe.eliminate_exists(gt(var("x"), var("y")), ["x"]) == TRUE

    def test_forall_with_unbounded_variable_is_false(self):
        # ∀x: x > y fails for every y.
        assert qe.eliminate_forall(gt(var("x"), var("y")), ["x"]) == FALSE

    def test_unbounded_conjunction_satisfiable(self):
        assert fme.is_satisfiable(
            [ge(var("x"), var("y")), ge(var("y"), const(100))]
        )


class TestDegenerateSingleVariable:
    def test_single_equality_eliminates_to_empty(self):
        reduced = fme.eliminate_variable([eq(var("x"), const(5))], "x")
        assert reduced == []

    def test_conflicting_equalities_unsatisfiable(self):
        constraints = [eq(var("x"), const(5)), eq(var("x"), const(6))]
        assert fme.eliminate_variable(constraints, "x") is None
        assert not fme.is_satisfiable(constraints)

    def test_pinched_bounds_imply_equality(self):
        pinched = [le(var("x"), const(5)), ge(var("x"), const(5))]
        assert fme.is_satisfiable(pinched)
        assert fme.implies(pinched, eq(var("x"), const(5)))

    def test_eliminate_all_single_variable(self):
        reduced = fme.eliminate_all(
            [lt(var("x"), const(5)), gt(var("x"), const(1))], ["x"]
        )
        assert reduced == []

    def test_eliminate_all_detects_empty_interval(self):
        assert (
            fme.eliminate_all(
                [lt(var("x"), const(1)), gt(var("x"), const(5))], ["x"]
            )
            is None
        )

    def test_redundant_bound_removed_by_simplify(self):
        # x <= 5 ∧ x < 5 simplifies to the strict bound alone.
        simplified = qe.simplify(
            conj([le(var("x"), const(5)), lt(var("x"), const(5))])
        )
        assert simplified == lt(var("x"), const(5))

    def test_equality_equivalent_to_pinched_bounds(self):
        assert qe.equivalent(
            eq(var("x"), const(5)),
            conj([le(var("x"), const(5)), ge(var("x"), const(5))]),
        )

    def test_tautological_disjunction_simplifies_to_true(self):
        # x <= y ∨ y < x covers ℝ².
        assert (
            qe.simplify(disj([le(var("x"), var("y")), lt(var("y"), var("x"))]))
            == TRUE
        )


class TestForallImplies:
    def test_one_dimensional_subsumption_shape(self):
        # ∀r: (v <= r) ⇒ (w <= r)  reduces to  w <= v — the textbook
        # one-attribute instance of the paper's derivation.
        derived = qe.forall_implies(
            le(var("v"), var("r")), le(var("w"), var("r")), ["r"]
        )
        assert qe.equivalent(derived, le(var("w"), var("v")))

    def test_strict_premise_weak_conclusion(self):
        # ∀r: (v < r) ⇒ (w <= r)  reduces to  w <= v.
        derived = qe.forall_implies(
            lt(var("v"), var("r")), le(var("w"), var("r")), ["r"]
        )
        assert qe.equivalent(derived, le(var("w"), var("v")))
