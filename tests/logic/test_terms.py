"""Tests for linear terms."""

from fractions import Fraction

import pytest

from repro.errors import QuantifierEliminationError
from repro.logic.terms import LinearTerm


x = LinearTerm.variable("x")
y = LinearTerm.variable("y")


class TestAlgebra:
    def test_add(self):
        term = x + y + LinearTerm.const(3)
        assert term.coefficient("x") == 1
        assert term.coefficient("y") == 1
        assert term.constant == 3

    def test_sub_cancels(self):
        term = (x + y) - x
        assert term == y
        assert "x" not in term.coefficients

    def test_scale(self):
        term = (x + LinearTerm.const(2)).scale(3)
        assert term.coefficient("x") == 3
        assert term.constant == 6

    def test_zero_coefficients_dropped(self):
        term = LinearTerm({"x": 0, "y": 2})
        assert term.variables() == frozenset({"y"})

    def test_multiply_by_constant(self):
        assert x.multiply(LinearTerm.const(4)) == x.scale(4)
        assert LinearTerm.const(4).multiply(x) == x.scale(4)

    def test_multiply_variables_rejected(self):
        with pytest.raises(QuantifierEliminationError):
            x.multiply(y)

    def test_divide_by_constant(self):
        assert x.divide(LinearTerm.const(2)) == x.scale(Fraction(1, 2))

    def test_divide_by_variable_rejected(self):
        with pytest.raises(QuantifierEliminationError):
            x.divide(y)

    def test_divide_by_zero_rejected(self):
        with pytest.raises(QuantifierEliminationError):
            x.divide(LinearTerm.const(0))

    def test_exact_fractions(self):
        term = x.scale(Fraction(1, 3)).scale(3)
        assert term == x


class TestManipulation:
    def test_drop(self):
        term = x + y
        assert term.drop("x") == y

    def test_substitute(self):
        # x + 2y with x := y + 1  ->  3y + 1
        term = x + y.scale(2)
        result = term.substitute("x", y + LinearTerm.const(1))
        assert result.coefficient("y") == 3
        assert result.constant == 1

    def test_substitute_absent_variable(self):
        assert y.substitute("x", LinearTerm.const(5)) == y

    def test_evaluate(self):
        term = x.scale(2) + y.scale(-1) + LinearTerm.const(1)
        assert term.evaluate({"x": 3, "y": 4}) == 3

    def test_is_constant(self):
        assert LinearTerm.const(5).is_constant
        assert not x.is_constant


class TestIdentity:
    def test_equality_ignores_representation(self):
        assert x + y == y + x

    def test_hashable(self):
        assert len({x + y, y + x}) == 1

    def test_repr_readable(self):
        text = repr(x - y + LinearTerm.const(2))
        assert "x" in text and "y" in text

    def test_float_coefficients_become_exact(self):
        term = LinearTerm({"x": 0.5})
        assert term.coefficient("x") == Fraction(1, 2)

    def test_non_numeric_rejected(self):
        with pytest.raises(QuantifierEliminationError):
            LinearTerm({"x": "bad"})  # type: ignore[dict-item]
