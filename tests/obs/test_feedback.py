"""Estimate-vs-actual feedback: q-errors and the cardinality report."""

import pytest

from repro.bench.figures import _batting_db
from repro.bench.record import RECORD_SEED
from repro.engine import EngineConfig, execute
from repro.engine.operators import PhysicalOperator
from repro.obs import CardinalityReport
from repro.sql.parser import parse
from repro.engine.planner import plan_query
from repro.workloads import figure1_queries

QUERIES = {name: q.sql for name, q in figure1_queries().items()}


@pytest.fixture(scope="module")
def small_db():
    return _batting_db(60, seed=RECORD_SEED)


def test_q_error_definition():
    node = PhysicalOperator()
    assert node.q_error() is None
    node.estimated_rows = 100.0
    assert node.q_error() is None
    node.actual_rows = 10
    assert node.q_error() == 10.0
    node.actual_rows = 1000
    assert node.q_error() == 10.0
    node.actual_rows = 100
    assert node.q_error() == 1.0
    # Floors: zero actuals never divide by zero.
    node.actual_rows = 0
    assert node.q_error() == 100.0


def test_explain_analyze_reports_q_error(small_db):
    planned = plan_query(small_db, parse(QUERIES["Q1"]), EngineConfig())
    text = planned.explain(analyze=True)
    assert "actual_rows=" in text
    assert "q_err=" in text


def test_to_dict_carries_q_error(small_db):
    planned = plan_query(small_db, parse(QUERIES["Q1"]), EngineConfig())
    planned.explain(analyze=True)
    document = planned.to_dict()

    def walk(node):
        yield node
        for child in node.get("children", []):
            yield from walk(child)

    annotated = [n for n in walk(document["root"]) if "q_error" in n]
    assert annotated
    for node in annotated:
        assert node["q_error"] >= 1.0
        assert "estimated_rows" in node and "actual_rows" in node


def test_traced_run_stamps_actual_rows(small_db):
    result = execute(small_db, QUERIES["Q1"], EngineConfig(trace="timing"))
    root = result.plan.root
    assert root.actual_rows == len(result.rows)
    assert root.q_error() is not None


def test_cardinality_report_ranks_worst(small_db):
    report = CardinalityReport()
    for name in ("Q1", "Q2", "Q3"):
        result = execute(small_db, QUERIES[name], EngineConfig(trace="timing"))
        added = report.record(name, result.plan.root)
        assert added > 0
    worst = report.worst()
    assert worst == sorted(worst, key=lambda e: -e["q_error"])
    assert report.worst(2) == worst[:2]
    document = report.to_dict()
    assert document["observations"] == len(report.entries)
    assert document["max_q_error"] == worst[0]["q_error"]
    assert document["median_q_error"] >= 1.0
    text = report.summary(5)
    assert "cardinality report" in text
    assert worst[0]["operator"] in text


def test_cardinality_report_skips_unanalyzed(small_db):
    planned = plan_query(small_db, parse(QUERIES["Q1"]), EngineConfig())
    report = CardinalityReport()
    assert report.record_planned("Q1", planned) == 0
    assert report.summary() == (
        "cardinality report: no estimate-vs-actual observations"
    )
    assert report.to_dict()["max_q_error"] is None
