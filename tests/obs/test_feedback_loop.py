"""The estimate→actual feedback loop: store, sketches, parity, and wins."""

import dataclasses
import re

import pytest

from repro.bench.figures import _batting_db
from repro.bench.record import RECORD_SEED
from repro.engine import EngineConfig, execute
from repro.engine.cardinality import blend_estimate
from repro.engine.planner import FEEDBACK_MODES, plan_query
from repro.sql.parser import parse
from repro.storage.statistics import FeedbackStatistics, sketch_table
from repro.workloads import figure1_queries, make_skewed_db, skewed_query

QUERIES = {name: q.sql for name, q in figure1_queries().items()}
MODES = ("row", "batch", "columnar")


def _plan_shape(explain_text):
    """Structural plan lines with all bracketed annotations stripped."""
    return [line.split("[")[0].rstrip() for line in explain_text.splitlines()]


# ---------------------------------------------------------------------------
# FeedbackStatistics store
# ---------------------------------------------------------------------------


class TestFeedbackStatistics:
    def test_record_and_lookup(self):
        store = FeedbackStatistics()
        store.record("scan:t|t.a = 1", est_rows=10.0, actual_rows=500.0, token=(1, 0))
        record = store.lookup("scan:t|t.a = 1", token=(1, 0))
        assert record is not None
        assert record.actual_rows == 500.0
        assert record.q_error == pytest.approx(50.0)
        assert store.lookup("scan:t|t.a = 2", token=(1, 0)) is None

    def test_token_mismatch_invalidates(self):
        store = FeedbackStatistics()
        store.record("fp", est_rows=10.0, actual_rows=100.0, token=(1, 0))
        assert store.lookup("fp", token=(2, 0)) is None
        # The stale entry is also dropped, not just hidden.
        assert len(store) == 0

    def test_same_token_rerecord_smooths(self):
        store = FeedbackStatistics()
        store.record("fp", est_rows=10.0, actual_rows=100.0, token=(1, 0))
        store.record("fp", est_rows=10.0, actual_rows=200.0, token=(1, 0))
        record = store.lookup("fp", token=(1, 0))
        assert record.observations == 2
        assert record.actual_rows == pytest.approx(150.0)  # 0.5/0.5 EMA
        assert record.max_q_error == pytest.approx(20.0)  # max ever seen

    def test_new_token_replaces(self):
        store = FeedbackStatistics()
        store.record("fp", est_rows=10.0, actual_rows=100.0, token=(1, 0))
        store.record("fp", est_rows=10.0, actual_rows=30.0, token=(2, 0))
        record = store.lookup("fp", token=(2, 0))
        assert record.observations == 1
        assert record.actual_rows == pytest.approx(30.0)

    def test_eviction_keeps_strong_entries(self):
        store = FeedbackStatistics(max_entries=2)
        store.record("weak", est_rows=10.0, actual_rows=11.0, token=(1, 0))
        store.record("strong", est_rows=10.0, actual_rows=1000.0, token=(1, 0))
        store.record("strong", est_rows=10.0, actual_rows=1000.0, token=(1, 0))
        store.record("new", est_rows=10.0, actual_rows=50.0, token=(1, 0))
        assert len(store) == 2
        assert store.lookup("weak", token=(1, 0)) is None
        assert store.lookup("strong", token=(1, 0)) is not None

    def test_version_advances_per_record(self):
        store = FeedbackStatistics()
        v0 = store.version
        store.record("fp", est_rows=1.0, actual_rows=2.0, token=(0, 0))
        assert store.version == v0 + 1


def test_blend_estimate_moves_toward_actual():
    store = FeedbackStatistics()
    store.record("fp", est_rows=10.0, actual_rows=1000.0, token=(0, 0))
    record = store.lookup("fp", token=(0, 0))
    blended = blend_estimate(10.0, record)
    assert 10.0 < blended <= 1000.0
    # A strong (high q-error, repeated) observation dominates the base.
    store.record("fp", est_rows=10.0, actual_rows=1000.0, token=(0, 0))
    blended = blend_estimate(10.0, store.lookup("fp", token=(0, 0)))
    assert blended > 300.0


# ---------------------------------------------------------------------------
# Online scan sketches
# ---------------------------------------------------------------------------


class TestSketches:
    def test_sketch_table_bounds_and_distinct(self):
        db = make_skewed_db()
        events = db.table("events")
        stats = sketch_table(events)
        kind = stats.columns["kind"]
        assert kind.minimum == 0 and kind.maximum == 7
        assert kind.nulls == 0
        assert kind.non_null == len(events)
        # 8 real kinds; the sketch's estimate must be in a sane band,
        # far from the sqrt(n) fallback (~77).
        assert 2 <= kind.distinct.estimate() <= 32
        user = stats.columns["user_id"]
        assert 100 <= user.distinct.estimate() <= 600
        assert kind.histogram is not None

    def test_sketch_cache_invalidated_by_mutation(self):
        db = make_skewed_db()
        events = db.table("events")
        first = events.sketch_statistics()
        assert events.sketch_statistics() is first  # cached
        events.insert((999_999, 3, 5))
        assert events.sketch_statistics() is not first

    def test_sketch_never_analyzes(self):
        db = make_skewed_db()
        events = db.table("events")
        events.sketch_statistics()
        assert events.statistics is None


# ---------------------------------------------------------------------------
# Parity: feedback must never change results
# ---------------------------------------------------------------------------


PARITY_DB = _batting_db(120, seed=RECORD_SEED)


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_feedback_parity(name):
    sql = QUERIES[name]
    base = EngineConfig(join_order="dp")
    baseline = execute(PARITY_DB, sql, base)
    for feedback in FEEDBACK_MODES:
        for mode in MODES:
            config = dataclasses.replace(
                base, feedback=feedback, execution_mode=mode
            )
            result = execute(PARITY_DB, sql, config)
            assert result.sorted_rows() == baseline.sorted_rows(), (
                f"{name} rows diverged under feedback={feedback}, mode={mode}"
            )


def test_observe_matches_off_work_counters():
    db_off = make_skewed_db()
    db_obs = make_skewed_db()
    sql = skewed_query()
    r_off = execute(db_off, sql, EngineConfig(join_order="dp", feedback="off"))
    r_obs = execute(db_obs, sql, EngineConfig(join_order="dp", feedback="observe"))
    # Observe never changes the plan, so the deterministic work
    # counters are bit-identical; only the harvest differs.
    assert r_obs.stats.as_dict() == r_off.stats.as_dict()
    assert r_obs.sorted_rows() == r_off.sorted_rows()
    assert len(db_off.feedback) == 0
    assert 0 < len(db_obs.feedback) <= db_obs.feedback.max_entries


def test_off_mode_plans_carry_no_feedback_artifacts():
    db = make_skewed_db()
    planned = plan_query(db, parse(skewed_query()), EngineConfig(join_order="dp"))
    text = planned.explain()
    assert "feedback" not in text
    from repro.obs import iter_plan_nodes

    for node in iter_plan_nodes(planned.root):
        assert node.feedback_fingerprint is None


# ---------------------------------------------------------------------------
# The headline win: skewed workload, observe → apply
# ---------------------------------------------------------------------------


class TestSkewedFeedbackWin:
    @pytest.fixture(scope="class")
    def loop(self):
        db = make_skewed_db()
        sql = skewed_query()

        def cfg(feedback, trace="off"):
            return EngineConfig(join_order="dp", feedback=feedback, trace=trace)

        before = execute(db, sql, cfg("off", trace="counters"))
        plan_before = plan_query(db, parse(sql), cfg("off")).explain()
        execute(db, sql, cfg("observe"))
        after = execute(db, sql, cfg("apply", trace="counters"))
        plan_after = plan_query(db, parse(sql), cfg("apply")).explain()
        return before, plan_before, after, plan_after

    def test_q_error_reduced_5x(self, loop):
        before, _, after, _ = loop
        q_before = before.report().to_dict()["max_q_error"]
        q_after = after.report().to_dict()["max_q_error"]
        assert q_before / q_after >= 5.0

    def test_plan_decision_flips(self, loop):
        _, plan_before, _, plan_after = loop
        assert _plan_shape(plan_before) != _plan_shape(plan_after)
        # The uncorrected plan drives the probe side from the
        # mis-estimated filtered events scan; the corrected one does not.
        assert "IndexNestedLoopJoin" in plan_before
        assert "HashJoin" in plan_after

    def test_explain_shows_corrections(self, loop):
        _, plan_before, _, plan_after = loop
        assert "[feedback: est" in plan_after
        assert "feedback" not in plan_before
        note = re.search(r"\[feedback: est ([\d.e+]+)->([\d.e+]+)\]", plan_after)
        assert note is not None
        assert float(note.group(2)) > float(note.group(1))

    def test_rows_bit_identical(self, loop):
        before, _, after, _ = loop
        assert sorted(before.rows) == sorted(after.rows)
        assert before.columns == after.columns


def test_harvest_only_on_success():
    from repro.errors import BudgetExceededError

    db = make_skewed_db()
    config = EngineConfig(
        join_order="dp", feedback="observe", max_rows_scanned=10
    )
    with pytest.raises(BudgetExceededError):
        execute(db, skewed_query(), config)
    assert len(db.feedback) == 0


def test_feedback_config_validation():
    with pytest.raises(ValueError):
        EngineConfig(feedback="sometimes")
    for mode in FEEDBACK_MODES:
        assert EngineConfig(feedback=mode).feedback == mode


def test_smart_iceberg_feedback_knob():
    from repro.core.system import SmartIceberg

    db = make_skewed_db()
    system = SmartIceberg(db, feedback="apply")
    assert system.config.feedback == "apply"
    assert SmartIceberg(db).config.feedback == "off"
