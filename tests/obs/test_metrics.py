"""Metrics registry: semantics, Prometheus format, executor wiring."""

import pytest

from repro import SmartIceberg
from repro.bench.figures import _batting_db
from repro.bench.record import RECORD_SEED
from repro.engine import EngineConfig, execute
from repro.engine.governor import Governor
from repro.engine.stats import ExecutionStats
from repro.obs import REGISTRY, MetricsRegistry, record_query
from repro.workloads import figure1_queries

QUERIES = {name: q.sql for name, q in figure1_queries().items()}


@pytest.fixture(scope="module")
def small_db():
    return _batting_db(60, seed=RECORD_SEED)


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------


def test_counter_accumulates_by_labels():
    registry = MetricsRegistry()
    counter = registry.counter("hits", "cache hits", ("mode",))
    counter.inc(mode="row")
    counter.inc(2, mode="row")
    counter.inc(mode="batch")
    assert counter.value(mode="row") == 3
    assert counter.value(mode="batch") == 1
    assert counter.value(mode="absent") == 0


def test_counter_rejects_negative():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("c").inc(-1)


def test_unknown_labels_rejected():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("c", labelnames=("mode",)).inc(modee="row")


def test_gauge_set_and_high_water():
    registry = MetricsRegistry()
    gauge = registry.gauge("bytes")
    gauge.set_max(100)
    gauge.set_max(50)
    assert gauge.value() == 100
    gauge.set(10)
    assert gauge.value() == 10


def test_histogram_cumulative_buckets():
    registry = MetricsRegistry()
    histogram = registry.histogram("lat", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        histogram.observe(value)
    text = registry.render()
    assert 'lat_bucket{le="0.1"} 1' in text
    assert 'lat_bucket{le="1"} 2' in text
    assert 'lat_bucket{le="+Inf"} 3' in text
    assert "lat_count 3" in text


def test_reregistration_same_shape_returns_same_metric():
    registry = MetricsRegistry()
    first = registry.counter("c", labelnames=("a",))
    assert registry.counter("c", labelnames=("a",)) is first
    with pytest.raises(ValueError):
        registry.gauge("c")
    with pytest.raises(ValueError):
        registry.counter("c", labelnames=("b",))


def test_render_prometheus_shape():
    registry = MetricsRegistry()
    registry.counter("reqs", "requests", ("mode",)).inc(mode="row")
    text = registry.render()
    assert "# HELP reqs requests\n" in text
    assert "# TYPE reqs counter\n" in text
    assert 'reqs{mode="row"} 1' in text
    assert text.endswith("\n")


# ---------------------------------------------------------------------------
# record_query wiring
# ---------------------------------------------------------------------------


def test_record_query_populates_registry(small_db):
    registry = MetricsRegistry()
    result = execute(small_db, QUERIES["Q1"], EngineConfig())
    record_query(result, governor=None, registry=registry)
    assert registry.get("repro_queries_total").value(mode="row") == 1
    work = registry.get("repro_work_total")
    assert work.value(counter="rows_scanned", mode="row") == (
        result.stats.rows_scanned
    )
    assert registry.get("repro_work_cost_total").value(mode="row") == (
        result.stats.cost()
    )


def test_record_query_headroom_gauges(small_db):
    registry = MetricsRegistry()
    stats = ExecutionStats(rows_scanned=25)
    governor = Governor(stats, max_rows_scanned=100)
    result = execute(small_db, QUERIES["Q1"], EngineConfig())
    record_query(result, governor=governor, registry=registry)
    headroom = registry.get("repro_governor_budget_headroom")
    assert headroom.value(budget="rows_scanned") == 0.75


def test_record_query_degradation_sites(small_db):
    registry = MetricsRegistry()
    result = execute(small_db, QUERIES["Q1"], EngineConfig())
    result.stats.degradations.append("nljp-cache: pressure")
    result.stats.degradations.append("nljp-cache: disabled")
    record_query(result, registry=registry)
    events = registry.get("repro_degradation_events_total")
    assert events.value(site="nljp-cache") == 2


def test_executor_records_into_process_registry(small_db):
    queries = REGISTRY.counter("repro_queries_total", "Queries executed", ("mode",))
    before = queries.value(mode="row")
    execute(small_db, QUERIES["Q2"], EngineConfig())
    assert queries.value(mode="row") == before + 1


def test_governor_headroom_values():
    stats = ExecutionStats(rows_scanned=50, join_pairs=10, cache_bytes=0)
    governor = Governor(
        stats, max_rows_scanned=100, max_join_pairs=100, max_cache_bytes=1000
    )
    headroom = governor.headroom()
    assert headroom["rows_scanned"] == 0.5
    assert headroom["join_pairs"] == 0.9
    assert headroom["cache_bytes"] == 1.0
    assert "deadline_seconds" not in headroom
    # Over-budget clamps at zero rather than going negative.
    stats.rows_scanned = 500
    assert governor.headroom()["rows_scanned"] == 0.0


# ---------------------------------------------------------------------------
# New ExecutionStats counters and serialization (satellites)
# ---------------------------------------------------------------------------


def test_stats_as_dict_excludes_events_by_default():
    stats = ExecutionStats(rows_scanned=1)
    stats.degradations.append("site: why")
    payload = stats.as_dict()
    assert "degradations" not in payload
    assert payload["rows_scanned"] == 1
    with_events = stats.as_dict(include_events=True)
    assert with_events["degradations"] == ["site: why"]
    # A fresh list: mutating it must not touch the stats.
    with_events["degradations"].append("x")
    assert stats.degradations == ["site: why"]


def test_stats_repr_shows_events():
    stats = ExecutionStats(cache_evictions=2, subsumption_merges=3)
    stats.degradations.append("site: why")
    text = repr(stats)
    assert "cache_evictions" in text and "subsumption_merges" in text
    assert "site: why" in text


def test_cache_evictions_counter_surfaces(small_db):
    """A bounded NLJP cache reports its evictions in the counters."""
    result = SmartIceberg(
        small_db, cache_max_entries=2, cache_policy="lru"
    ).execute(QUERIES["Q1"])
    assert result.stats.cache_evictions > 0
    assert result.stats.as_dict()["cache_evictions"] == (
        result.stats.cache_evictions
    )


def test_subsumption_merges_counter():
    """Combining-mode NLJP counts merged partial-aggregation states,
    identically in row and batch mode."""
    from repro.core.iceberg import IcebergBlock
    from repro.core.nljp import NLJPOperator
    from repro.core.pruning import check_pruning
    from repro.engine.operators import ExecutionContext
    from repro.engine.planner import PlanEnv
    from repro.sql.parser import parse
    from repro.workloads.basket import BasketConfig, make_basket_db

    sql = (
        "SELECT i1.item, COUNT(*) FROM basket i1, basket i2 "
        "WHERE i1.bid = i2.bid AND i1.item < i2.item "
        "GROUP BY i1.item HAVING COUNT(*) >= 2"
    )
    db = make_basket_db(BasketConfig())

    def run(batch_size):
        block = IcebergBlock(parse(sql).body, db)
        view = block.partition(["i1"])
        env = PlanEnv(db=db, config=EngineConfig.smart())
        nljp = NLJPOperator(view, env, pruning=check_pruning(view))
        assert not nljp.direct_mode
        ctx = ExecutionContext(batch_size=batch_size)
        rows = sorted(nljp.execute(ctx))
        return rows, ctx.stats

    row_rows, row_stats = run(None)
    batch_rows, batch_stats = run(7)
    assert row_stats.subsumption_merges > 0
    assert row_rows == batch_rows
    assert row_stats.subsumption_merges == batch_stats.subsumption_merges


def test_bench_record_includes_new_counters_and_events(small_db):
    from repro.bench.harness import make_systems, run_comparison
    from repro.bench.record import _measurement_record

    systems = make_systems(("all",))
    measurement = run_comparison(small_db, {"Q1": QUERIES["Q1"]}, systems)[0]
    record = _measurement_record(measurement)
    assert "cache_evictions" in record["counters"]
    assert "subsumption_merges" in record["counters"]
    assert "degradations" not in record["counters"]
    assert isinstance(record["degradations"], list)


# ---------------------------------------------------------------------------
# Thread safety: the 8-thread hammer
# ---------------------------------------------------------------------------


def test_registry_is_thread_safe_under_8_thread_hammer():
    """Exact totals survive 8 threads hammering shared metrics.

    Every thread drives the same counter, gauge, and histogram through
    the registry (increments, high-water updates, observations) while
    another mixes in renders.  Lost updates would show up as totals
    below the exact expected values.
    """
    import threading

    registry = MetricsRegistry()
    counter = registry.counter("hammer_total", "increments", ("thread",))
    shared = registry.counter("hammer_shared_total", "shared increments")
    gauge = registry.gauge("hammer_high_water", "max value seen")
    histogram = registry.histogram(
        "hammer_seconds", "observations", buckets=(0.5, 1.5, 2.5)
    )
    n_threads, per_thread = 8, 2000

    def hammer(index):
        for step in range(per_thread):
            counter.inc(thread=str(index))
            shared.inc()
            gauge.set_max(index * per_thread + step)
            histogram.observe(index % 3)
            if step % 500 == 0:
                registry.render()

    threads = [
        threading.Thread(target=hammer, args=(index,))
        for index in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)

    assert shared.value() == n_threads * per_thread
    for index in range(n_threads):
        assert counter.value(thread=str(index)) == per_thread
    assert gauge.value() == (n_threads - 1) * per_thread + per_thread - 1
    rendered = registry.render()
    assert f"hammer_seconds_count {n_threads * per_thread}" in rendered


def test_concurrent_registration_returns_one_metric_instance():
    import threading

    registry = MetricsRegistry()
    instances = []
    lock = threading.Lock()

    def register():
        metric = registry.counter("same_name", "idempotent", ("a",))
        with lock:
            instances.append(metric)

    threads = [threading.Thread(target=register) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10.0)
    assert all(metric is instances[0] for metric in instances)
