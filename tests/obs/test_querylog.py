"""Structured query log: schema, bounds, report, and server wiring."""

import json

import pytest

from repro.bench.figures import _batting_db
from repro.bench.record import RECORD_SEED
from repro.obs.metrics import MetricsRegistry
from repro.obs.querylog import (
    QUERY_LOG_FIELDS,
    QueryLog,
    stable_fingerprint,
    validate_record,
    validate_records,
)
from repro.obs.report import aggregate, main as report_main
from repro.serve.server import IcebergServer

GROUP_SQL = (
    "SELECT playerid, SUM(b_hr) AS hr FROM batting "
    "GROUP BY playerid HAVING SUM(b_hr) > 10"
)
JOIN_SQL = (
    "SELECT b1.playerid FROM batting b1, batting b2 "
    "WHERE b1.playerid = b2.playerid AND b1.b_hr > 20 AND b2.b_h > 50 "
    "GROUP BY b1.playerid"
)


# ---------------------------------------------------------------------------
# QueryLog mechanics
# ---------------------------------------------------------------------------


class TestQueryLog:
    def test_append_fills_golden_schema(self):
        log = QueryLog(max_entries=4)
        record = log.append(session="s1", outcome="ok")
        assert set(record) == set(QUERY_LOG_FIELDS)
        assert record["sequence"] == 1
        assert record["latency_seconds"] is None
        assert validate_record(record) == []

    def test_unknown_field_rejected(self):
        log = QueryLog(max_entries=4)
        with pytest.raises(ValueError, match="unknown query-log fields"):
            log.append(session="s1", surprise=True)

    def test_bounded_eviction(self):
        log = QueryLog(max_entries=3)
        for i in range(10):
            log.append(session=f"s{i}", outcome="ok")
        assert len(log) == 3
        assert log.sequence == 10
        retained = [record["sequence"] for record in log.to_list()]
        assert retained == [8, 9, 10]
        assert [r["sequence"] for r in log.tail(2)] == [9, 10]

    def test_jsonl_roundtrip_and_compaction(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        log = QueryLog(max_entries=3, path=path)
        for i in range(10):
            log.append(session=f"s{i}", outcome="ok")
        lines = open(path).read().splitlines()
        # Compaction keeps the file bounded near the in-memory tail.
        assert len(lines) <= 2 * log.max_entries
        records = QueryLog.read(path)
        assert validate_records(records) == []
        assert records[-1]["sequence"] == 10
        log.compact()
        assert len(QueryLog.read(path)) == len(log)

    def test_stable_fingerprint(self):
        assert stable_fingerprint("SELECT 1") == stable_fingerprint("SELECT 1")
        assert stable_fingerprint("SELECT 1") != stable_fingerprint("SELECT 2")
        assert len(stable_fingerprint("x")) == 16


# ---------------------------------------------------------------------------
# Report aggregation
# ---------------------------------------------------------------------------


def _record(**overrides):
    base = {name: None for name in QUERY_LOG_FIELDS}
    base.update(
        outcome="ok",
        latency_seconds=0.01,
        plan_cache_hit=True,
        degradations=[],
        feedback_corrections=[],
        worst_q_errors=[],
    )
    base.update(overrides)
    return base


class TestReport:
    def test_aggregate_percentiles_and_rates(self):
        records = [
            _record(latency_seconds=0.001 * (i + 1), plan_cache_hit=i > 0)
            for i in range(10)
        ]
        records.append(_record(outcome="error:AdmissionRejectedError",
                               latency_seconds=None, plan_cache_hit=None))
        summary = aggregate(records)
        assert summary["queries"] == 11
        assert summary["outcomes"]["ok"] == 10
        assert summary["outcomes"]["error:AdmissionRejectedError"] == 1
        assert summary["latency_seconds"]["p50"] == pytest.approx(0.005, abs=1e-3)
        assert summary["plan_cache_hit_rate"] == pytest.approx(0.9)

    def test_aggregate_worst_predicates(self):
        records = [
            _record(worst_q_errors=[
                {"fingerprint": "scan:t|t.a = 1", "est": 10, "actual": 500,
                 "q_error": 50.0},
            ]),
            _record(worst_q_errors=[
                {"fingerprint": "scan:t|t.a = 1", "est": 10, "actual": 900,
                 "q_error": 90.0},
                {"fingerprint": "scan:u|", "est": 5, "actual": 6, "q_error": 1.2},
            ], feedback_corrections=["feedback: est 10->500"]),
        ]
        summary = aggregate(records, top=1)
        assert len(summary["worst_predicates"]) == 1
        worst = summary["worst_predicates"][0]
        assert worst["fingerprint"] == "scan:t|t.a = 1"
        assert worst["q_error"] == 90.0  # max across records, deduped
        assert summary["feedback"] == {"corrected_plans": 1, "corrections": 1}

    def test_cli_renders_and_validates(self, tmp_path, capsys):
        path = tmp_path / "log.jsonl"
        with open(path, "w") as handle:
            handle.write(json.dumps(_record()) + "\n")
        assert report_main([str(path)]) == 0
        assert "query log: 1 records" in capsys.readouterr().out
        with open(path, "w") as handle:
            handle.write(json.dumps({"not": "a record"}) + "\n")
        assert report_main([str(path)]) == 1


# ---------------------------------------------------------------------------
# Server wiring
# ---------------------------------------------------------------------------


@pytest.fixture()
def server(tmp_path):
    db = _batting_db(120, seed=RECORD_SEED)
    return IcebergServer(
        db,
        registry=MetricsRegistry(),
        query_log_path=str(tmp_path / "server.jsonl"),
    )


class TestServerWiring:
    def test_every_execution_logged(self, server):
        with server.session() as session:
            session.execute(GROUP_SQL)
            session.execute(GROUP_SQL)
            session.execute(JOIN_SQL)
        records = server.query_log.to_list()
        assert len(records) == 3
        assert validate_records(records) == []
        assert [r["plan_cache_hit"] for r in records] == [False, True, False]
        for record in records:
            assert record["outcome"] == "ok"
            assert record["feedback_mode"] == "observe"
            assert record["technique_mask"] == ["apriori", "memprune"]
            assert record["latency_seconds"] is not None
            assert record["breaker_states"] == {
                "apriori": "closed", "memprune": "closed",
            }
        # The observe default harvests estimate→actual observations.
        assert len(server.db.feedback) > 0
        # Mis-estimates of the join query surface in the log.
        assert records[-1]["worst_q_errors"]
        assert records[-1]["worst_q_errors"][0]["q_error"] >= 1.0

    def test_error_outcome_logged(self, server):
        from repro.errors import UnknownColumnError

        with server.session() as session:
            with pytest.raises(UnknownColumnError):
                session.execute("SELECT nope FROM batting")
        records = server.query_log.to_list()
        assert len(records) == 1
        assert records[0]["outcome"] == "error:UnknownColumnError"
        assert records[0]["sql_fingerprint"] is not None
        assert records[0]["latency_seconds"] is None

    def test_serve_metrics_exported(self, server):
        with server.session() as session:
            session.execute(GROUP_SQL)
        text = server._registry.render()
        assert 'repro_server_admission_outcomes{outcome="admitted"} 1' in text
        assert 'repro_server_breaker_transitions{technique="apriori"' in text
        assert "repro_server_plan_cache" in text

    def test_feedback_apply_extends_cache_token(self, tmp_path):
        db = _batting_db(120, seed=RECORD_SEED)
        server = IcebergServer(db, registry=MetricsRegistry(), feedback="apply")
        with server.session() as session:
            session.execute(JOIN_SQL)
            first_version = db.feedback.version
            assert first_version > 0  # apply harvests too
            session.execute(JOIN_SQL)
        records = server.query_log.to_list()
        # Fresh observations moved the token, so the second execution
        # re-planned (a miss), picking the corrections up.
        assert records[1]["plan_cache_hit"] is False
        assert records[1]["feedback_mode"] == "apply"

    def test_explicit_config_feedback_respected(self):
        from repro.engine.planner import EngineConfig

        db = _batting_db(60, seed=RECORD_SEED)
        server = IcebergServer(
            db, registry=MetricsRegistry(), config=EngineConfig()
        )
        assert server._feedback_mode == "off"
        with server.session() as session:
            session.execute(GROUP_SQL)
        assert len(db.feedback) == 0
        assert server.query_log.to_list()[0]["feedback_mode"] == "off"
