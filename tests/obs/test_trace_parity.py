"""Trace parity: tracing observes execution, never changes it.

The acceptance bar from the observability tentpole: Q1-Q8 across both
execution modes and both interesting join orders are *bit-identical*
(rows and every work counter) between ``trace="off"`` and
``trace="timing"``, and the span tree's per-span ExecutionStats deltas
sum exactly to the query-global totals — attribution neither invents
nor loses work.
"""

import pytest

from repro import SmartIceberg
from repro.bench.figures import _batting_db
from repro.bench.record import RECORD_SEED
from repro.engine import EngineConfig, execute
from repro.workloads import figure1_queries

QUERIES = {name: q.sql for name, q in figure1_queries().items()}


@pytest.fixture(scope="module")
def small_db():
    return _batting_db(60, seed=RECORD_SEED)


def run(db, sql, join_order, execution_mode, trace):
    return execute(
        db,
        sql,
        EngineConfig(
            join_order=join_order, execution_mode=execution_mode, trace=trace
        ),
    )


@pytest.mark.parametrize("query_name", sorted(QUERIES))
@pytest.mark.parametrize("execution_mode", ["row", "batch"])
@pytest.mark.parametrize("join_order", ["syntactic", "dp"])
def test_trace_off_vs_timing_bit_identical(
    small_db, query_name, execution_mode, join_order
):
    sql = QUERIES[query_name]
    off = run(small_db, sql, join_order, execution_mode, "off")
    timed = run(small_db, sql, join_order, execution_mode, "timing")
    assert off.sorted_rows() == timed.sorted_rows()
    assert off.stats.as_dict() == timed.stats.as_dict()
    assert off.profile is None
    assert timed.profile is not None


@pytest.mark.parametrize("query_name", sorted(QUERIES))
@pytest.mark.parametrize("execution_mode", ["row", "batch"])
def test_span_deltas_sum_to_query_totals(small_db, query_name, execution_mode):
    result = run(small_db, QUERIES[query_name], "dp", execution_mode, "timing")
    assert result.profile.total_stats() == result.stats.as_dict()


@pytest.mark.parametrize("query_name", ["Q1", "Q4", "Q5", "Q8"])
def test_smart_iceberg_trace_parity(small_db, query_name):
    """The NLJP path (cache hooks and Q_B/Q_R sub-plans) is parity-safe."""
    sql = QUERIES[query_name]
    off = SmartIceberg(small_db).execute(sql)
    timed = SmartIceberg(small_db, trace="timing").execute(sql)
    assert off.sorted_rows() == timed.sorted_rows()
    assert off.stats.as_dict() == timed.stats.as_dict()
    assert timed.profile.total_stats() == timed.stats.as_dict()


def test_counters_mode_parity_and_no_wall_clock(small_db):
    sql = QUERIES["Q1"]
    off = run(small_db, sql, "dp", "row", "off")
    counted = run(small_db, sql, "dp", "row", "counters")
    assert off.sorted_rows() == counted.sorted_rows()
    assert off.stats.as_dict() == counted.stats.as_dict()
    profile = counted.profile
    assert profile.mode == "counters"
    assert profile.total_stats() == counted.stats.as_dict()
    for span in profile.root.walk():
        assert span.wall_seconds == 0.0
        assert span.first_start is None


def test_traced_plan_is_rerunnable(small_db):
    """finish() restores the plan: a second run produces the same result."""
    sql = QUERIES["Q2"]
    config = EngineConfig(trace="timing")
    first = execute(small_db, sql, config)
    second = execute(small_db, sql, config)
    assert first.sorted_rows() == second.sorted_rows()
    assert first.stats.as_dict() == second.stats.as_dict()


def test_trace_config_validation():
    with pytest.raises(ValueError):
        EngineConfig(trace="flamegraph")
