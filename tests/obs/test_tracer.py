"""Tracer mechanics: span trees, reentrancy, dedupe, exports, phases."""

import json

import pytest

from repro import SmartIceberg
from repro.bench.figures import _batting_db
from repro.bench.record import RECORD_SEED
from repro.engine import EngineConfig, execute
from repro.obs import (
    QueryProfile,
    Span,
    Tracer,
    child_plans,
    iter_plan_nodes,
    merge_chrome_traces,
)
from repro.workloads import figure1_queries

QUERIES = {name: q.sql for name, q in figure1_queries().items()}


@pytest.fixture(scope="module")
def small_db():
    return _batting_db(60, seed=RECORD_SEED)


@pytest.fixture(scope="module")
def q1_timed(small_db):
    return execute(small_db, QUERIES["Q1"], EngineConfig(trace="timing"))


def test_span_tree_mirrors_plan(small_db, q1_timed):
    """Operator spans correspond one-to-one with distinct plan nodes."""
    planned = q1_timed.plan
    plan_types = sorted(type(n).__name__ for n in iter_plan_nodes(planned.root))
    span_types = sorted(
        s.name for s in q1_timed.profile.root.walk() if s.kind == "operator"
    )
    assert span_types == plan_types


def test_root_span_counts_match_result(q1_timed):
    root = q1_timed.profile.root
    assert root.name == "CountOutput"
    assert root.rows == len(q1_timed.rows)
    # One next() per row plus the exhausting StopIteration call.
    assert root.count == len(q1_timed.rows) + 1


def test_phases_present_and_timed(q1_timed):
    names = [phase.name for phase in q1_timed.profile.phases]
    assert names == ["parse", "plan"]
    assert all(phase.wall_seconds >= 0.0 for phase in q1_timed.profile.phases)


def test_timing_spans_have_envelopes(q1_timed):
    for span in q1_timed.profile.root.walk():
        if span.kind != "operator" or span.count == 0:
            continue
        assert span.first_start is not None and span.last_end is not None
        assert span.last_end >= span.first_start
        assert span.wall_seconds >= 0.0


def test_reentrancy_guard_limit_in_batch_mode(small_db):
    """Limit's default execute_batches re-enters execute on the same
    node; the depth guard must keep rows and deltas single-counted."""
    sql = "SELECT playerid, year, b_h FROM batting LIMIT 5"
    off = execute(small_db, sql, EngineConfig(execution_mode="batch"))
    timed = execute(
        small_db, sql, EngineConfig(execution_mode="batch", trace="timing")
    )
    assert off.sorted_rows() == timed.sorted_rows()
    assert off.stats.as_dict() == timed.stats.as_dict()
    profile = timed.profile
    assert profile.total_stats() == timed.stats.as_dict()
    limit_spans = [s for s in profile.root.walk() if s.name == "Limit"]
    assert len(limit_spans) == 1
    assert limit_spans[0].rows == 5


def test_shared_cte_wrapped_once(small_db):
    """A CTE referenced twice shares one materialization — and one span."""
    sql = """
        WITH seasons AS (
            SELECT playerid AS pid, year AS yr FROM batting
        )
        SELECT a.pid, COUNT(*)
        FROM seasons a, seasons b
        WHERE a.pid = b.pid AND a.yr < b.yr
        GROUP BY a.pid
        HAVING COUNT(*) >= 1
    """
    off = execute(small_db, sql, EngineConfig())
    timed = execute(small_db, sql, EngineConfig(trace="timing"))
    assert off.sorted_rows() == timed.sorted_rows()
    assert off.stats.as_dict() == timed.stats.as_dict()
    profile = timed.profile
    assert profile.total_stats() == timed.stats.as_dict()
    materialize_spans = [
        s for s in profile.root.walk() if s.attrs.get("edge") == "materialize"
    ]
    assert len(materialize_spans) == 1


def test_nljp_sub_plans_and_cache_spans(small_db):
    result = SmartIceberg(small_db, trace="timing").execute(QUERIES["Q1"])
    profile = result.profile
    edges = {
        s.attrs.get("edge")
        for s in profile.root.walk()
        if s.attrs.get("edge") is not None
    }
    assert {"qb_plan", "qr_plan"} <= edges
    cache = {s.name: s for s in profile.root.walk() if s.kind == "cache"}
    assert "cache:memo_get" in cache
    assert cache["cache:memo_get"].count > 0
    # Cache spans carry zero stats deltas: pure interaction counts.
    for span in cache.values():
        assert all(v == 0 for v in span.exclusive_stats().values())
    # The NLJP driver executions: memo hits recorded on the get span.
    hits = cache["cache:memo_get"].attrs.get("hits", 0)
    assert hits == result.stats.cache_hits


def test_tracer_is_one_shot(small_db):
    from repro.engine.planner import plan_query
    from repro.sql.parser import parse

    planned = plan_query(small_db, parse(QUERIES["Q1"]), EngineConfig())
    tracer = Tracer("counters")
    tracer.install(planned.root)
    with pytest.raises(RuntimeError):
        tracer.install(planned.root)
    tracer.finish()
    # finish() removed every wrapper: nothing traced remains.
    for node in iter_plan_nodes(planned.root):
        assert "execute" not in node.__dict__ or node.children() == []


def test_tracer_rejects_off_mode():
    with pytest.raises(ValueError):
        Tracer("off")
    with pytest.raises(ValueError):
        Tracer("everything")


def test_child_plans_covers_hidden_children(small_db):
    result = SmartIceberg(small_db).execute(QUERIES["Q1"])
    nljp = [
        node
        for node in iter_plan_nodes(result.plan.root)
        if type(node).__name__ == "NLJPOperator"
    ]
    assert nljp, "Q1 should plan through NLJP under the full system"
    labels = {edge for _, edge in child_plans(nljp[0]) if edge}
    assert {"qb_plan", "qr_plan"} <= labels


def test_chrome_trace_schema(q1_timed):
    trace = q1_timed.profile.to_chrome_trace()
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    events = trace["traceEvents"]
    metas = [e for e in events if e["ph"] == "M"]
    completes = [e for e in events if e["ph"] == "X"]
    assert metas and completes
    assert {e["name"] for e in metas} == {"process_name", "thread_name"}
    for event in completes:
        assert event["dur"] > 0
        assert "args" in event and "count" in event["args"]
    phase_events = [e for e in completes if e["cat"] == "phase"]
    operator_events = [e for e in completes if e["cat"] == "operator"]
    assert {e["tid"] for e in phase_events} == {0}
    assert {e["tid"] for e in operator_events} == {1}
    json.dumps(trace)  # round-trippable as-is


def test_chrome_trace_child_envelopes_nest(q1_timed):
    """A child operator's event lies inside its parent's event."""
    trace = q1_timed.profile.to_chrome_trace()
    by_name = {}
    for event in trace["traceEvents"]:
        if event["ph"] == "X" and event["cat"] == "operator":
            by_name.setdefault(event["name"], event)

    def check(span):
        parent = by_name.get(span.name)
        for child in span.children:
            if child.kind != "operator" or child.count == 0:
                continue
            event = by_name.get(child.name)
            if parent is None or event is None:
                continue
            assert event["ts"] >= parent["ts"] - 1e-6
            assert (
                event["ts"] + event["dur"]
                <= parent["ts"] + parent["dur"] + 1e-6
            )
            check(child)

    check(q1_timed.profile.root)


def test_merge_chrome_traces_distinct_pids(small_db):
    first = execute(small_db, QUERIES["Q1"], EngineConfig(trace="timing"))
    second = execute(small_db, QUERIES["Q2"], EngineConfig(trace="timing"))
    merged = merge_chrome_traces(
        [("Q1/base", first.profile), ("Q2/base", second.profile)]
    )
    pids = {e["pid"] for e in merged["traceEvents"]}
    assert pids == {1, 2}
    process_names = {
        e["args"]["name"]
        for e in merged["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert process_names == {"Q1/base", "Q2/base"}


def test_profile_json_export(q1_timed):
    document = json.loads(q1_timed.profile.to_json())
    assert document["mode"] == "timing"
    assert document["root"]["name"] == "CountOutput"
    assert document["total_stats"]["rows_scanned"] > 0
    assert [p["name"] for p in document["phases"]] == ["parse", "plan"]


def test_span_exclusive_never_double_counts():
    parent = Span("parent")
    child = Span("child")
    parent.children.append(child)
    parent.accumulate((0,) * 10, tuple([5] + [0] * 9))
    child.accumulate((0,) * 10, tuple([3] + [0] * 9))
    assert parent.inclusive_stats()["rows_scanned"] == 5
    assert parent.exclusive_stats()["rows_scanned"] == 2
    profile = QueryProfile(root=parent)
    assert profile.total_stats()["rows_scanned"] == 5


def test_error_paths_restore_plan(small_db):
    """A budget trip mid-query still unwraps the traced plan."""
    from repro.errors import BudgetExceededError

    config = EngineConfig(trace="timing", max_rows_scanned=10)
    with pytest.raises(BudgetExceededError) as info:
        execute(small_db, QUERIES["Q1"], config)
    assert info.value.stats is not None
    # The same statement executes cleanly afterwards (fresh plan, but
    # the registry/tracer state must not have been corrupted).
    ok = execute(small_db, QUERIES["Q1"], EngineConfig(trace="timing"))
    assert ok.profile.total_stats() == ok.stats.as_dict()
