"""Admission controller: concurrency bounds, queueing, load shedding."""

import threading

import pytest

from repro.errors import AdmissionRejectedError
from repro.serve.admission import AdmissionController


def test_admits_up_to_max_concurrent():
    controller = AdmissionController(max_concurrent=2, max_queue=0)
    assert controller.acquire() == 0.0
    assert controller.acquire() == 0.0
    assert controller.active == 2
    with pytest.raises(AdmissionRejectedError) as info:
        controller.acquire()
    assert info.value.reason == "queue-full"
    controller.release()
    assert controller.acquire() == 0.0


def test_queue_deadline_rejection():
    controller = AdmissionController(
        max_concurrent=1, max_queue=4, queue_timeout_seconds=0.05
    )
    controller.acquire()
    with pytest.raises(AdmissionRejectedError) as info:
        controller.acquire()
    assert info.value.reason == "queue-deadline"
    assert info.value.waited_seconds >= 0.05
    assert controller.outcomes["rejected-queue-deadline"] == 1
    controller.release()


def test_queued_caller_admitted_when_slot_frees():
    controller = AdmissionController(
        max_concurrent=1, max_queue=4, queue_timeout_seconds=5.0
    )
    controller.acquire()
    admitted = []

    def waiter():
        admitted.append(controller.acquire())

    thread = threading.Thread(target=waiter)
    thread.start()
    # Give the waiter time to enter the queue, then free the slot.
    for _ in range(100):
        if controller.queued == 1:
            break
        threading.Event().wait(0.005)
    controller.release()
    thread.join(timeout=5.0)
    assert len(admitted) == 1 and admitted[0] >= 0.0
    assert controller.outcomes["admitted"] == 2
    controller.release()


def test_headroom_load_shedding_and_recovery():
    controller = AdmissionController(max_concurrent=4, headroom_floor=0.2)
    controller.note_headroom({"rows_scanned": 0.1, "deadline_seconds": 0.9})
    with pytest.raises(AdmissionRejectedError) as info:
        controller.acquire()
    assert info.value.reason == "headroom"
    # A later healthy query clears the shed state.
    controller.note_headroom({"rows_scanned": 0.8})
    assert controller.acquire() == 0.0
    controller.release()
    # An ungoverned query (no budgets) reads as fully healthy.
    controller.note_headroom({"rows_scanned": 0.0})
    controller.note_headroom({})
    assert controller.acquire() == 0.0
    controller.release()


def test_fair_share():
    controller = AdmissionController(max_concurrent=4)
    assert controller.fair_share(1000) == 250
    assert controller.fair_share(2) == 1  # never below one unit
    assert controller.fair_share(None) is None


def test_admit_context_manager_releases_on_error():
    controller = AdmissionController(max_concurrent=1, max_queue=0)
    with pytest.raises(RuntimeError):
        with controller.admit():
            assert controller.active == 1
            raise RuntimeError("boom")
    assert controller.active == 0


def test_concurrent_hammer_never_exceeds_limit():
    controller = AdmissionController(
        max_concurrent=3, max_queue=64, queue_timeout_seconds=10.0
    )
    peak = [0]
    lock = threading.Lock()

    def work():
        for _ in range(25):
            with controller.admit():
                with lock:
                    peak[0] = max(peak[0], controller.active)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert peak[0] <= 3
    assert controller.active == 0
    assert controller.outcomes["admitted"] == 8 * 25


def test_validation():
    with pytest.raises(ValueError, match="max_concurrent"):
        AdmissionController(max_concurrent=0)
    with pytest.raises(ValueError, match="max_queue"):
        AdmissionController(max_queue=-1)
    with pytest.raises(ValueError, match="headroom_floor"):
        AdmissionController(headroom_floor=1.0)
    with pytest.raises(ValueError, match="queue_timeout_seconds"):
        AdmissionController(queue_timeout_seconds=-0.1)
