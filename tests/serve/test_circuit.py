"""Circuit breaker state machine, on a virtual clock."""

import pytest

from repro.serve.circuit import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class VirtualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return VirtualClock()


def test_closed_allows_and_isolated_failures_do_not_trip(clock):
    breaker = CircuitBreaker("apriori", failure_threshold=3, clock=clock)
    for _ in range(10):
        assert breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the consecutive count
    assert breaker.state == CLOSED


def test_consecutive_failures_trip_open(clock):
    breaker = CircuitBreaker(
        "apriori", failure_threshold=3, recovery_seconds=30.0, clock=clock
    )
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state == OPEN
    assert not breaker.allow()
    assert breaker.retry_after_seconds() == pytest.approx(30.0)


def test_half_open_probe_after_recovery_then_close(clock):
    breaker = CircuitBreaker(
        "memprune", failure_threshold=1, recovery_seconds=10.0, clock=clock
    )
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.advance(9.9)
    assert not breaker.allow()
    clock.advance(0.2)
    assert breaker.allow()  # the probe
    assert breaker.state == HALF_OPEN
    assert not breaker.allow()  # only one probe at a time
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.allow()


def test_failed_probe_reopens(clock):
    breaker = CircuitBreaker(
        "memprune", failure_threshold=1, recovery_seconds=10.0, clock=clock
    )
    breaker.record_failure()
    clock.advance(11.0)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert not breaker.allow()
    # A fresh recovery window starts from the re-open.
    clock.advance(11.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CLOSED


def test_transition_counters(clock):
    breaker = CircuitBreaker(
        "apriori", failure_threshold=1, recovery_seconds=5.0, clock=clock
    )
    breaker.record_failure()
    clock.advance(6.0)
    breaker.allow()
    breaker.record_success()
    assert breaker.transitions == {OPEN: 1, HALF_OPEN: 1, CLOSED: 1}


def test_validation(clock):
    with pytest.raises(ValueError, match="failure_threshold"):
        CircuitBreaker("x", failure_threshold=0)
    with pytest.raises(ValueError, match="recovery_seconds"):
        CircuitBreaker("x", recovery_seconds=-1.0)
    with pytest.raises(ValueError, match="half_open_probes"):
        CircuitBreaker("x", half_open_probes=0)
