"""Watchdog soak: 8 threads hammer one server, zero lock inversions.

The static checker proves the *annotated* discipline is followed and
its acquisition-order graph is acyclic; this soak is the dynamic half
of the argument.  Every serving-layer lock — plan cache, per-entry
execution locks (via the injected factory), admission condition,
circuit breakers, engine/session registries, metrics — is wrapped by
:class:`~repro.testing.lockwatch.LockOrderWatchdog`, eight sessions
run a mixed workload concurrently (cache hits, misses, invalidation
flushes, stats scrapes), and the witnessed-order graph must come out
cycle-free.
"""

import threading

import pytest

from repro import IcebergServer
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.testing.lockwatch import (
    LockOrderWatchdog,
    unwatch_registry,
    watch_registry,
    watch_server,
    watch_session,
)
from repro.workloads import BaseballConfig, figure1_queries, make_batting_db

N_THREADS = 8
ROUNDS = 3


@pytest.fixture(scope="module")
def db():
    return make_batting_db(BaseballConfig(n_rows=40, seed=7))


@pytest.fixture
def global_registry_watch():
    """Watch the engine-side global registry; restore it afterwards.

    The engine records its metrics against the module-global
    ``REGISTRY`` (not the server's private registry), and it does so
    *while holding the plan-cache entry lock* — exactly the kind of
    cross-subsystem nesting the watchdog exists to order-check.
    """
    watchdog = LockOrderWatchdog()
    watch_registry(REGISTRY, watchdog)
    try:
        yield watchdog
    finally:
        unwatch_registry(REGISTRY)


def test_soak_eight_threads_no_lock_order_inversions(db, global_registry_watch):
    watchdog = global_registry_watch
    server = IcebergServer(
        db,
        max_concurrent=N_THREADS,
        max_queue=N_THREADS,
        registry=MetricsRegistry(),
    )
    watch_server(server, watchdog)
    queries = [query.sql for query in figure1_queries().values()][:4]
    barrier = threading.Barrier(N_THREADS)
    errors = []

    def workload(index):
        session = server.session()
        watch_session(session, watchdog)
        barrier.wait(timeout=30)
        try:
            for round_no in range(ROUNDS):
                for offset in range(len(queries)):
                    session.execute(queries[(index + offset) % len(queries)])
                # Mix in the cross-cutting paths: a metrics scrape
                # (registry lock under no other lock) and, from one
                # thread per round, a full plan-cache flush (cache
                # lock against in-flight entry locks).
                server._registry.render()
                if index == round_no:
                    server.plan_cache.invalidate_all()
        except Exception as error:  # noqa: BLE001 — collected for the assert
            errors.append(error)

    threads = [
        threading.Thread(target=workload, args=(index,), name=f"soak-{index}")
        for index in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not any(thread.is_alive() for thread in threads), "soak wedged"
    assert errors == []

    # The whole point: enough concurrency to witness real nesting,
    # and not one inversion among the witnessed orders.
    assert watchdog.acquisitions > N_THREADS * ROUNDS
    assert watchdog.witnessed_edges(), "soak never nested two locks"
    watchdog.assert_no_inversions()


def test_watch_server_covers_entry_locks(db):
    """Entry locks created after instrumentation are born watched."""
    watchdog = LockOrderWatchdog()
    server = IcebergServer(db, registry=MetricsRegistry())
    watch_server(server, watchdog)
    session = server.session()
    session.execute(next(iter(figure1_queries().values())).sql)
    entry_locks = [
        entry.lock for entry in server.plan_cache._entries.values()
    ]
    assert entry_locks, "execution should have cached a plan"
    assert all(lock.name == "PlanCacheEntry.lock" for lock in entry_locks)
    watchdog.assert_no_inversions()
