"""The shared plan cache: tokens, LRU, invalidation accounting."""

from repro.serve.plan_cache import PlanCache

import pytest

MASK = frozenset({"apriori", "memprune"})


def test_miss_store_hit():
    cache = PlanCache(max_entries=4)
    token = (1, 0, 0)
    assert cache.lookup("SELECT 1", MASK, token) is None
    entry = cache.store("SELECT 1", MASK, token, optimized="plan")
    found = cache.lookup("SELECT 1", MASK, token)
    assert found is entry
    assert found.optimized == "plan"
    assert found.hits == 1
    assert cache.stats() == {
        "entries": 1, "hits": 1, "misses": 1, "invalidations": 0, "evictions": 0,
        "flights": 0, "flight_waits": 0,
    }


def test_stale_token_invalidates_lazily():
    cache = PlanCache(max_entries=4)
    cache.store("SELECT 1", MASK, (1, 5, 2), optimized="old")
    # Data version moved (an insert happened): the entry is dropped at
    # lookup time and the caller re-optimizes.
    assert cache.lookup("SELECT 1", MASK, (1, 6, 2)) is None
    assert cache.stats()["invalidations"] == 1
    assert len(cache) == 0
    cache.store("SELECT 1", MASK, (1, 6, 2), optimized="new")
    assert cache.lookup("SELECT 1", MASK, (1, 6, 2)).optimized == "new"


def test_distinct_technique_masks_are_distinct_entries():
    cache = PlanCache(max_entries=4)
    token = (0, 0, 0)
    cache.store("SELECT 1", MASK, token, optimized="full")
    cache.store("SELECT 1", frozenset({"apriori"}), token, optimized="degraded")
    assert cache.lookup("SELECT 1", MASK, token).optimized == "full"
    assert (
        cache.lookup("SELECT 1", frozenset({"apriori"}), token).optimized
        == "degraded"
    )


def test_lru_eviction_prefers_recently_used():
    cache = PlanCache(max_entries=2)
    token = (0, 0, 0)
    cache.store("a", MASK, token, optimized=1)
    cache.store("b", MASK, token, optimized=2)
    cache.lookup("a", MASK, token)  # refresh "a"
    cache.store("c", MASK, token, optimized=3)  # evicts "b"
    assert cache.lookup("a", MASK, token) is not None
    assert cache.lookup("b", MASK, token) is None
    assert cache.stats()["evictions"] == 1


def test_discard_and_invalidate_all():
    cache = PlanCache(max_entries=4)
    token = (0, 0, 0)
    cache.store("a", MASK, token, optimized=1)
    cache.store("b", MASK, token, optimized=2)
    assert cache.discard("a", MASK)
    assert not cache.discard("a", MASK)
    assert cache.invalidate_all() == 1
    assert len(cache) == 0
    assert cache.stats()["invalidations"] == 2


def test_entries_carry_an_execution_lock():
    cache = PlanCache()
    entry = cache.store("a", MASK, (0, 0, 0), optimized=1)
    with entry.lock:  # usable as a context manager, reentrant
        with entry.lock:
            pass


def test_validation():
    with pytest.raises(ValueError, match="max_entries"):
        PlanCache(max_entries=0)
