"""Single-flight plan builds: one optimizer run per missed key."""

import threading
import time

from repro import IcebergServer
from repro.serve.plan_cache import PlanCache
from repro.workloads import BaseballConfig, figure1_queries, make_batting_db

MASK = frozenset({"apriori", "memprune"})


class TestClaimRelease:
    def test_leader_then_followers(self):
        cache = PlanCache(max_entries=4)
        leader, latch = cache.claim("SELECT 1", MASK)
        assert leader
        again, same_latch = cache.claim("SELECT 1", MASK)
        assert not again
        assert same_latch is latch
        assert not same_latch.is_set()
        cache.release("SELECT 1", MASK)
        assert same_latch.is_set()
        assert cache.stats()["flights"] == 1
        assert cache.stats()["flight_waits"] == 1

    def test_release_without_claim_is_harmless(self):
        cache = PlanCache(max_entries=4)
        cache.release("SELECT 1", MASK)
        assert cache.stats()["flights"] == 0

    def test_distinct_keys_fly_independently(self):
        cache = PlanCache(max_entries=4)
        assert cache.claim("a", MASK)[0]
        assert cache.claim("b", MASK)[0]
        assert cache.stats()["flights"] == 2
        cache.release("a", MASK)
        cache.release("b", MASK)


class TestServerSingleFlight:
    def test_concurrent_first_touch_optimizes_once(self):
        db = make_batting_db(BaseballConfig(n_rows=120, seed=21))
        server = IcebergServer(db, max_concurrent=2, max_queue=2)
        sql = figure1_queries()["Q1"].sql

        calls = []
        entered = threading.Event()
        proceed = threading.Event()
        real_engine = server._engine

        class SlowEngine:
            def __init__(self, engine):
                self._engine = engine

            def optimize(self, statement):
                calls.append(statement)
                entered.set()
                assert proceed.wait(10)
                return self._engine.optimize(statement)

            def __getattr__(self, name):
                return getattr(self._engine, name)

        server._engine = lambda mask: SlowEngine(real_engine(mask))

        rows = [None, None]

        def run(index):
            with server.session() as session:
                rows[index] = session.execute(sql).sorted_rows()

        first = threading.Thread(target=run, args=(0,))
        first.start()
        assert entered.wait(10)
        second = threading.Thread(target=run, args=(1,))
        second.start()
        # The second session must reach the in-flight latch (counted as
        # a flight wait) before the leader is allowed to finish.
        deadline = time.monotonic() + 10
        while (
            server.plan_cache.stats()["flight_waits"] == 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        proceed.set()
        first.join(30)
        second.join(30)

        assert len(calls) == 1  # the whole point: one build, two sessions
        stats = server.plan_cache.stats()
        assert stats["flights"] == 1
        assert stats["flight_waits"] >= 1
        assert stats["hits"] >= 1
        assert rows[0] == rows[1] and rows[0] is not None
