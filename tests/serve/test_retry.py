"""Retry taxonomy and deterministic backoff.

The taxonomy test is the satellite's contract: every error class the
library can raise is classified exactly once, so a new error type
added without a retryable/fatal decision fails CI here.
"""

import pytest

from repro import errors
from repro.errors import (
    AdmissionRejectedError,
    BudgetExceededError,
    CircuitOpenError,
    InjectedFaultError,
    ParseError,
    QueryCancelledError,
    ReproError,
    UnknownTableError,
)
from repro.serve.retry import (
    ERROR_TAXONOMY,
    FATAL,
    RETRYABLE,
    BackoffSchedule,
    RetryPolicy,
    classify_error,
)


class TestTaxonomy:
    def test_every_error_class_classified_exactly_once(self):
        declared = {
            obj
            for obj in vars(errors).values()
            if isinstance(obj, type) and issubclass(obj, ReproError)
        }
        assert declared == set(ERROR_TAXONOMY)
        # "exactly once": the mapping is by class object, so one row per
        # class by construction; every value is a valid category.
        assert set(ERROR_TAXONOMY.values()) == {RETRYABLE, FATAL}

    def test_transient_conditions_are_retryable(self):
        assert classify_error(InjectedFaultError("boom", site="scan")) == RETRYABLE
        assert classify_error(AdmissionRejectedError("shed")) == RETRYABLE
        assert classify_error(CircuitOpenError("open")) == RETRYABLE

    def test_deterministic_failures_are_fatal(self):
        assert classify_error(ParseError("bad sql")) == FATAL
        assert classify_error(BudgetExceededError("over")) == FATAL
        assert classify_error(QueryCancelledError("cancelled")) == FATAL
        assert classify_error(UnknownTableError("nope")) == FATAL

    def test_unknown_subclass_inherits_parent_classification(self):
        class CustomFault(InjectedFaultError):
            pass

        class CustomPlanning(errors.PlanningError):
            pass

        assert classify_error(CustomFault("x", site="scan")) == RETRYABLE
        assert classify_error(CustomPlanning("x")) == FATAL

    def test_non_repro_errors_are_fatal(self):
        assert classify_error(KeyError("raw")) == FATAL
        assert classify_error(RuntimeError("raw")) == FATAL


class TestBackoff:
    def test_same_seed_and_key_replays_identically(self):
        schedule = BackoffSchedule(seed=42)
        first = [next(iter_) for iter_ in [schedule.delays("s1:1")] for _ in range(6)]
        again = []
        it = schedule.delays("s1:1")
        for _ in range(6):
            again.append(next(it))
        assert first == again

    def test_different_keys_draw_independent_jitter(self):
        schedule = BackoffSchedule(seed=42)
        a = [d for d, _ in zip(schedule.delays("a"), range(6))]
        b = [d for d, _ in zip(schedule.delays("b"), range(6))]
        assert a != b

    def test_exponential_growth_and_cap(self):
        schedule = BackoffSchedule(
            base_seconds=1.0, multiplier=2.0, max_seconds=4.0, jitter=0.0
        )
        delays = [d for d, _ in zip(schedule.delays(), range(5))]
        assert delays == [1.0, 2.0, 4.0, 4.0, 4.0]

    def test_jitter_only_shrinks_delays(self):
        schedule = BackoffSchedule(
            base_seconds=1.0, multiplier=1.0, max_seconds=1.0, jitter=0.5, seed=3
        )
        for delay, _ in zip(schedule.delays("k"), range(20)):
            assert 0.5 <= delay <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="multiplier"):
            BackoffSchedule(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter"):
            BackoffSchedule(jitter=1.5)
        with pytest.raises(ValueError, match="base_seconds"):
            BackoffSchedule(base_seconds=-1.0)


class TestRetryPolicy:
    def test_retryable_error_is_retried_to_success(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise InjectedFaultError("transient", site="scan")
            return "ok"

        policy = RetryPolicy(max_attempts=3)
        assert policy.run(flaky) == "ok"
        assert len(attempts) == 3

    def test_fatal_error_is_not_retried(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise ParseError("bad")

        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(ParseError) as info:
            policy.run(broken)
        assert len(attempts) == 1
        assert info.value.retry_attempts == 1

    def test_exhaustion_reraises_the_typed_error_with_annotations(self):
        def always():
            raise InjectedFaultError("transient", site="scan")

        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(InjectedFaultError) as info:
            policy.run(always, key="k")
        assert info.value.retry_attempts == 3
        assert info.value.retry_backoff_seconds > 0.0

    def test_backoff_is_virtual_time(self):
        """No wall-clock sleeping: delays go to the injected callable."""
        slept = []
        policy = RetryPolicy(
            max_attempts=4,
            schedule=BackoffSchedule(
                base_seconds=10.0, multiplier=2.0, max_seconds=100.0,
                jitter=0.0, seed=0,
            ),
            sleep=slept.append,
        )

        import time

        started = time.perf_counter()
        with pytest.raises(InjectedFaultError):
            policy.run(
                lambda: (_ for _ in ()).throw(
                    InjectedFaultError("transient", site="scan")
                )
            )
        assert time.perf_counter() - started < 1.0  # 70 virtual seconds
        assert slept == [10.0, 20.0, 40.0]

    def test_replay_is_deterministic_under_fixed_seed(self):
        def episode():
            slept = []
            policy = RetryPolicy(
                max_attempts=4,
                schedule=BackoffSchedule(seed=7),
                sleep=slept.append,
            )
            with pytest.raises(InjectedFaultError):
                policy.run(
                    lambda: (_ for _ in ()).throw(
                        InjectedFaultError("transient", site="scan")
                    ),
                    key="session-1:5",
                )
            return slept

        assert episode() == episode()

    def test_on_retry_callback_sees_error_attempt_delay(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise InjectedFaultError("transient", site="scan")
            return 1

        policy = RetryPolicy(max_attempts=3)
        policy.run(flaky, on_retry=lambda e, n, d: seen.append((type(e), n, d)))
        assert [entry[:2] for entry in seen] == [
            (InjectedFaultError, 1),
            (InjectedFaultError, 2),
        ]
        assert all(delay > 0 for _, _, delay in seen)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
