"""IcebergServer end-to-end: sessions, plan cache, breakers, lifetimes."""

import pytest

from repro import CancelToken, IcebergServer, SmartIceberg
from repro.errors import (
    BudgetExceededError,
    CircuitOpenError,
    InjectedFaultError,
    QueryCancelledError,
    SessionClosedError,
)
from repro.serve.circuit import CLOSED, HALF_OPEN, OPEN
from repro.serve.server import FULL_MASK, _breaker_for_degradation
from repro.testing import FaultPlan, FaultSpec
from repro.workloads import BaseballConfig, figure1_queries, make_batting_db

QUERIES = {name: q.sql for name, q in figure1_queries().items()}


@pytest.fixture
def db():
    return make_batting_db(BaseballConfig(n_rows=120, seed=7))


@pytest.fixture
def server(db):
    return IcebergServer(db, max_concurrent=4)


class VirtualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestPlanCache:
    def test_second_prepared_execution_hits_the_cache(self, server):
        with server.session() as session:
            statement = session.prepare(QUERIES["Q1"])
            first = statement.execute()
            assert server.plan_cache.stats()["hits"] == 0
            second = statement.execute()
            assert server.plan_cache.stats()["hits"] == 1
            assert first.sorted_rows() == second.sorted_rows()

    def test_cache_is_shared_across_sessions(self, server):
        with server.session() as one, server.session() as two:
            one.execute(QUERIES["Q1"])
            two.execute(QUERIES["Q1"])
        assert server.plan_cache.stats() ["hits"] == 1
        assert server.plan_cache.stats()["misses"] == 1

    def test_insert_invalidates(self, db, server):
        with server.session() as session:
            statement = session.prepare(QUERIES["Q1"])
            statement.execute()
            db.table("batting").insert_many(list(db.table("batting").rows[:3]))
            after = statement.execute()
            assert server.plan_cache.stats()["invalidations"] == 1
            # The re-optimized plan sees the new data.
            fresh = SmartIceberg(db).execute(QUERIES["Q1"]).sorted_rows()
            assert after.sorted_rows() == fresh

    def test_analyze_invalidates(self, db, server):
        with server.session() as session:
            statement = session.prepare(QUERIES["Q2"])
            statement.execute()
            db.table("batting").analyze()
            statement.execute()
            assert server.plan_cache.stats()["invalidations"] == 1

    def test_ddl_invalidates(self, db, server):
        from repro.storage import SqlType, TableSchema

        with server.session() as session:
            statement = session.prepare(QUERIES["Q1"])
            statement.execute()
            db.create_table(
                "scratch", TableSchema.of(("x", SqlType.INTEGER))
            )
            statement.execute()
            assert server.plan_cache.stats()["invalidations"] == 1

    def test_shared_nljp_memo_warms_across_executions(self, db):
        server = IcebergServer(db, shared_nljp_cache=True)
        with server.session() as session:
            statement = session.prepare(QUERIES["Q2"])
            first = statement.execute()
            second = statement.execute()
            assert second.sorted_rows() == first.sorted_rows()
            # The second run replays bindings the first run cached.
            assert second.stats.cache_hits > first.stats.cache_hits


class TestSessionLifetimes:
    def test_closed_session_refuses_work(self, server):
        session = server.session()
        session.close()
        with pytest.raises(SessionClosedError):
            session.execute(QUERIES["Q1"])
        with pytest.raises(SessionClosedError):
            session.prepare(QUERIES["Q1"])

    def test_cancelled_token_does_not_leak_into_next_query(self, server):
        """Satellite: CancelToken lifetime audit, serving-layer view."""
        with server.session() as session:
            token = CancelToken()
            token.cancel("client went away")
            with pytest.raises(QueryCancelledError):
                session.execute(QUERIES["Q1"], cancel_token=token)
            # Same session, same cached plan, no token: must succeed.
            result = session.execute(QUERIES["Q1"])
            assert len(result.rows) > 0

    def test_cancelled_token_does_not_leak_on_smart_iceberg(self, db):
        """Satellite: the audit on the bare facade (per-call kwarg)."""
        system = SmartIceberg(db)
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelledError):
            system.execute(QUERIES["Q1"], cancel_token=token)
        assert len(system.execute(QUERIES["Q1"]).rows) > 0

    def test_constructor_token_dropped_after_trip(self, db):
        token = CancelToken()
        system = SmartIceberg(db, cancel_token=token)
        token.cancel()
        with pytest.raises(QueryCancelledError):
            system.execute(QUERIES["Q1"])
        # The tripped token is forgotten; the instance stays usable.
        assert system.config.cancel_token is None
        assert len(system.execute(QUERIES["Q1"]).rows) > 0

    def test_tripped_deadline_does_not_leak(self, db):
        system = SmartIceberg(db)
        with pytest.raises(BudgetExceededError) as info:
            system.execute(QUERIES["Q1"], deadline_seconds=0.0)
        assert info.value.budget == "deadline_seconds"
        assert len(system.execute(QUERIES["Q1"]).rows) > 0

    def test_session_deadline_applies_per_query(self, server):
        session = server.session(deadline_seconds=0.0)
        server.retry.max_attempts = 1
        with pytest.raises(BudgetExceededError):
            session.execute(QUERIES["Q1"])


class TestServingFaultSites:
    def test_admission_fault_is_retried(self, db):
        server = IcebergServer(db)
        plan = FaultPlan([FaultSpec(site="admission", kind="error", times=1)])
        session = server.session(fault_plan=plan)
        result = session.execute(QUERIES["Q1"])
        assert len(result.rows) > 0
        assert session.retries == 1
        assert plan.fired(0) == 1

    def test_plan_cache_fault_is_retried(self, db):
        server = IcebergServer(db)
        plan = FaultPlan([FaultSpec(site="plan-cache", kind="error", times=1)])
        session = server.session(fault_plan=plan)
        result = session.execute(QUERIES["Q1"])
        assert len(result.rows) > 0
        assert session.retries == 1

    def test_persistent_fault_exhausts_attempts_with_typed_error(self, db):
        server = IcebergServer(db, max_attempts=2)
        plan = FaultPlan([FaultSpec(site="admission", kind="error", times=None)])
        session = server.session(fault_plan=plan)
        with pytest.raises(InjectedFaultError) as info:
            session.execute(QUERIES["Q1"])
        assert info.value.retry_attempts == 2


class TestCircuitBreakers:
    def _degrading_server(self, db, clock, fault_times):
        """A server whose a-priori phase fails ``fault_times`` times."""
        return IcebergServer(
            db,
            degradation="fallback",
            fault_plan=FaultPlan(
                [
                    FaultSpec(
                        site="reducer", kind="error", times=fault_times
                    )
                ]
            ),
            breaker_threshold=2,
            breaker_recovery_seconds=10.0,
            clock=clock,
        )

    def test_degradation_events_map_to_breakers(self):
        assert _breaker_for_degradation("apriori[main]: boom") == "apriori"
        assert _breaker_for_degradation("memprune: boom") == "memprune"
        assert _breaker_for_degradation("nljp-cache: evicting") == "memprune"
        assert _breaker_for_degradation("something-else: x") is None

    def test_repeated_degradation_trips_then_recovers(self, db):
        # Q4's WITH block takes the a-priori rewrite, so an injected
        # "reducer" fault under fallback degrades each optimization.
        clock = VirtualClock()
        baseline = SmartIceberg(db).execute(QUERIES["Q4"]).sorted_rows()
        server = self._degrading_server(db, clock, fault_times=3)
        session = server.session()
        breaker = server.breakers["apriori"]

        # Two degraded executions (threshold 2) trip the breaker; the
        # degraded plan is dropped from the cache each time.
        assert session.execute(QUERIES["Q4"]).sorted_rows() == baseline
        assert breaker.state == CLOSED
        assert session.execute(QUERIES["Q4"]).sorted_rows() == baseline
        assert breaker.state == OPEN

        # While open, queries plan without a-priori (degraded mask) and
        # run clean — correct rows, no degradation events.
        open_result = session.execute(QUERIES["Q4"])
        assert open_result.sorted_rows() == baseline
        assert not open_result.stats.degradations
        assert (QUERIES["Q4"], FULL_MASK) not in server.plan_cache._entries

        # After the recovery window a half-open probe re-enables the
        # technique; the fault still has one firing left, so the probe
        # degrades and the breaker re-opens.
        clock.advance(11.0)
        assert session.execute(QUERIES["Q4"]).sorted_rows() == baseline
        assert breaker.state == OPEN

        # Next probe: the fault budget is exhausted, the a-priori phase
        # succeeds, and the breaker closes.
        clock.advance(11.0)
        result = session.execute(QUERIES["Q4"])
        assert result.sorted_rows() == baseline
        assert breaker.state == CLOSED
        assert not result.stats.degradations

    def test_require_technique_raises_typed_error_when_open(self, db):
        clock = VirtualClock()
        server = IcebergServer(db, clock=clock, breaker_recovery_seconds=10.0)
        server.require_technique("apriori")  # closed: fine
        breaker = server.breakers["apriori"]
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        with pytest.raises(CircuitOpenError) as info:
            server.require_technique("apriori")
        assert info.value.technique == "apriori"
        assert info.value.retry_after_seconds == pytest.approx(10.0)


class TestAdmissionIntegration:
    def test_fair_share_budget_applied_to_engines(self, db):
        server = IcebergServer(db, max_concurrent=4, max_rows_scanned=4000)
        engine = server._engine(FULL_MASK)
        assert engine.config.max_rows_scanned == 1000

    def test_headroom_feedback_sheds_after_tight_query(self, db):
        from repro.errors import AdmissionRejectedError

        scanned = SmartIceberg(db).execute(QUERIES["Q1"]).stats.rows_scanned
        # Per-slot budget ~11% above actual usage: the query succeeds
        # but reports ~0.1 headroom, below the 0.5 floor.
        server = IcebergServer(
            db,
            max_concurrent=4,
            headroom_floor=0.5,
            max_rows_scanned=int(scanned / 0.9) * 4,
        )
        server.retry.max_attempts = 1
        session = server.session()
        result = session.execute(QUERIES["Q1"])
        assert len(result.rows) > 0
        with pytest.raises(AdmissionRejectedError) as info:
            session.execute(QUERIES["Q1"])
        assert info.value.reason == "headroom"
        assert server.admission.outcomes["rejected-headroom"] == 1
