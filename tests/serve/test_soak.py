"""The acceptance soak: 8 concurrent sessions, faults on, bit-identical.

Eight sessions run the full Figure-1 workload (Q1–Q8) in every
execution mode (row, batch, columnar) concurrently against one server,
each session with its own deterministic fault plan injecting transient
errors into the serving layer (admission, plan-cache) and the engine
(scan).  The claim:

* every execution's rows are bit-identical to a serial, un-faulted
  run of the same query;
* every transient fault is retried to success within the attempt
  budget — no error escapes;
* any error that *did* escape would be a typed, classified
  :class:`~repro.errors.ReproError` (asserted on the collection path);
* the shared plan cache serves repeat statements (hits ≫ misses).
"""

import threading

import pytest

from repro import IcebergServer, SmartIceberg
from repro.errors import ReproError
from repro.serve.retry import FATAL, RETRYABLE, classify_error
from repro.testing import FaultPlan, FaultSpec
from repro.workloads import BaseballConfig, figure1_queries, make_batting_db

MODES = ("row", "batch", "columnar")
N_SESSIONS = 8


@pytest.fixture(scope="module")
def db():
    return make_batting_db(BaseballConfig(n_rows=60, seed=7))


@pytest.fixture(scope="module")
def serial_baselines(db):
    """Un-faulted, single-threaded reference rows per (query, mode)."""
    baselines = {}
    for mode in MODES:
        system = SmartIceberg(db, execution_mode=mode)
        for name, query in figure1_queries().items():
            baselines[(name, mode)] = system.execute(query.sql).sorted_rows()
    return baselines


def _session_fault_plan(index):
    """A deterministic, bounded fault plan for session ``index``.

    Every spec is an error fault at a *retryable* site with a finite
    ``times`` budget, so the retry policy (3 attempts) always wins.
    Plans differ per session (different trigger counts) to stagger the
    failures across the run.
    """
    return FaultPlan(
        [
            FaultSpec(site="admission", kind="error", after=index, times=1),
            FaultSpec(site="plan-cache", kind="error", after=index + 2, times=1),
            FaultSpec(site="scan", kind="error", after=50 + 10 * index, times=1),
        ],
        seed=index,
    )


def test_soak_concurrent_sessions_bit_identical(db, serial_baselines):
    queries = {name: q.sql for name, q in figure1_queries().items()}
    server = IcebergServer(db, max_concurrent=N_SESSIONS, max_queue=N_SESSIONS)
    sessions = [
        server.session(fault_plan=_session_fault_plan(index))
        for index in range(N_SESSIONS)
    ]
    outcomes = {}
    errors = []
    lock = threading.Lock()

    def workload(index):
        session = sessions[index]
        for mode in MODES:
            for name in sorted(queries):
                try:
                    result = session.execute(
                        queries[name], execution_mode=mode
                    )
                    with lock:
                        outcomes[(index, name, mode)] = result.sorted_rows()
                except Exception as error:  # collected, asserted below
                    with lock:
                        errors.append((index, name, mode, error))

    threads = [
        threading.Thread(target=workload, args=(index,))
        for index in range(N_SESSIONS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert not any(thread.is_alive() for thread in threads), "soak deadlocked"

    # Any escaped error must be typed and classified — and with every
    # fault retryable and bounded, none should escape at all.
    for index, name, mode, error in errors:
        assert isinstance(error, ReproError), (index, name, mode, error)
        assert classify_error(error) in (RETRYABLE, FATAL)
    assert errors == []

    # Bit-identical to the serial un-faulted reference, all 192 cells.
    assert len(outcomes) == N_SESSIONS * len(queries) * len(MODES)
    for (index, name, mode), rows in outcomes.items():
        assert rows == serial_baselines[(name, mode)], (index, name, mode)

    # The transient faults actually fired and were retried to success.
    fired = sum(
        session.fault_plan.fired(spec_index)
        for session in sessions
        for spec_index in range(3)
    )
    assert fired > 0
    assert sum(session.retries for session in sessions) >= fired

    # The shared plan cache did its job: the vast majority of the 192
    # executions were cache hits.  Concurrent first-touch misses for
    # the same statement race (last store wins), so misses can exceed
    # the statement count but never the per-session worst case, and
    # the cache converges to one entry per statement.
    stats = server.plan_cache.stats()
    assert stats["hits"] > stats["misses"]
    assert len(queries) <= stats["misses"] <= N_SESSIONS * len(queries)
    assert stats["entries"] == len(queries)
