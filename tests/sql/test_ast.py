"""Tests for AST helpers: traversal, transformation, conjunct handling."""

from repro.sql import ast
from repro.sql.parser import parse, parse_expression


class TestWalk:
    def test_walk_visits_all_columns(self):
        expr = parse_expression("a + b * c")
        refs = [n for n in ast.walk(expr) if isinstance(n, ast.ColumnRef)]
        assert {r.column for r in refs} == {"a", "b", "c"}

    def test_walk_skips_subqueries_when_asked(self):
        expr = parse_expression("a IN (SELECT b FROM t)")
        names = {
            n.column
            for n in ast.walk(expr, into_subqueries=False)
            if isinstance(n, ast.ColumnRef)
        }
        assert names == {"a"}

    def test_walk_into_subqueries(self):
        expr = parse_expression("a IN (SELECT b FROM t)")
        names = {
            n.column
            for n in ast.walk(expr, into_subqueries=True)
            if isinstance(n, ast.ColumnRef)
        }
        assert names == {"a", "b"}

    def test_walk_query(self):
        query = parse("SELECT a FROM t WHERE b = 1 GROUP BY c HAVING COUNT(*) > 0")
        names = {
            n.column for n in ast.walk(query) if isinstance(n, ast.ColumnRef)
        }
        assert names == {"a", "b", "c"}


class TestColumnRefs:
    def test_column_refs(self):
        expr = parse_expression("t.a < u.b")
        refs = ast.column_refs(expr)
        assert {r.qualified() for r in refs} == {"t.a", "u.b"}

    def test_aggregate_calls(self):
        expr = parse_expression("COUNT(*) >= 2 AND SUM(a) < 5")
        calls = ast.aggregate_calls(expr)
        assert {c.name for c in calls} == {"COUNT", "SUM"}

    def test_aggregate_calls_not_in_subquery(self):
        expr = parse_expression("a IN (SELECT COUNT(*) FROM t)")
        assert ast.aggregate_calls(expr) == ()


class TestTransform:
    def test_identity_returns_same_object(self):
        expr = parse_expression("a + b")
        assert ast.transform(expr, lambda n: n) is expr

    def test_replace_literal(self):
        expr = parse_expression("a + 1")

        def bump(node):
            if isinstance(node, ast.Literal) and node.value == 1:
                return ast.Literal(2)
            return node

        assert ast.transform(expr, bump) == parse_expression("a + 2")

    def test_replace_column(self):
        expr = parse_expression("x < y")

        def qualify(node):
            if isinstance(node, ast.ColumnRef) and node.table is None:
                return ast.ColumnRef("t", node.column)
            return node

        assert ast.transform(expr, qualify) == parse_expression("t.x < t.y")

    def test_transform_rebuilds_tuples(self):
        query = parse("SELECT a, b FROM t")

        def rename(node):
            if isinstance(node, ast.ColumnRef):
                return ast.ColumnRef(node.table, node.column.upper().lower())
            return node

        assert ast.transform(query, rename) == query


class TestConjuncts:
    def test_split_flat(self):
        expr = parse_expression("a = 1 AND b = 2 AND c = 3")
        assert len(ast.conjuncts(expr)) == 3

    def test_or_not_split(self):
        expr = parse_expression("a = 1 OR b = 2")
        assert ast.conjuncts(expr) == (expr,)

    def test_none(self):
        assert ast.conjuncts(None) == ()

    def test_conjoin_empty(self):
        assert ast.conjoin(()) is None

    def test_conjoin_single(self):
        expr = parse_expression("a = 1")
        assert ast.conjoin((expr,)) is expr

    def test_round_trip(self):
        expr = parse_expression("a = 1 AND (b = 2 OR c = 3) AND d = 4")
        rebuilt = ast.conjoin(ast.conjuncts(expr))
        assert ast.conjuncts(rebuilt) == ast.conjuncts(expr)


class TestNodeProperties:
    def test_func_is_aggregate(self):
        assert ast.FuncCall("COUNT", (ast.Star(),)).is_aggregate
        assert not ast.FuncCall("ABS", (ast.Literal(1),)).is_aggregate

    def test_column_qualified_name(self):
        assert ast.ColumnRef("t", "a").qualified() == "t.a"
        assert ast.ColumnRef(None, "a").qualified() == "a"

    def test_named_table_binding_name(self):
        assert ast.NamedTable("t").binding_name == "t"
        assert ast.NamedTable("t", "u").binding_name == "u"

    def test_nodes_hashable(self):
        seen = {parse_expression("a + 1"), parse_expression("a + 1")}
        assert len(seen) == 1
