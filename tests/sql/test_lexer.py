"""Tests for the SQL lexer."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import Token, TokenType, tokenize


def kinds(sql: str):
    return [(t.type, t.value) for t in tokenize(sql)[:-1]]  # drop EOF


class TestBasics:
    def test_keywords_uppercased(self):
        assert kinds("select from") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "FROM"),
        ]

    def test_identifiers_lowercased(self):
        assert kinds("MyTable") == [(TokenType.IDENTIFIER, "mytable")]

    def test_quoted_identifier_preserves_case(self):
        assert kinds('"MyCol"') == [(TokenType.IDENTIFIER, "MyCol")]

    def test_eof_token(self):
        tokens = tokenize("x")
        assert tokens[-1].type is TokenType.EOF

    def test_empty_input(self):
        assert tokenize("") == [Token(TokenType.EOF, "", 0)]


class TestNumbers:
    def test_integer(self):
        assert kinds("42") == [(TokenType.NUMBER, "42")]

    def test_float(self):
        assert kinds("3.25") == [(TokenType.NUMBER, "3.25")]

    def test_leading_dot(self):
        assert kinds(".5") == [(TokenType.NUMBER, ".5")]

    def test_scientific(self):
        assert kinds("1e6 2.5E-3") == [
            (TokenType.NUMBER, "1e6"),
            (TokenType.NUMBER, "2.5E-3"),
        ]

    def test_number_then_dot_member(self):
        # "1.2.3" lexes as number then punctuation then number.
        tokens = kinds("1.2.3")
        assert tokens[0] == (TokenType.NUMBER, "1.2")


class TestStrings:
    def test_simple_string(self):
        assert kinds("'hello'") == [(TokenType.STRING, "hello")]

    def test_escaped_quote(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(LexerError):
            tokenize('"oops')


class TestOperators:
    @pytest.mark.parametrize("op", ["<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%", "||"])
    def test_each_operator(self, op):
        assert kinds(f"a {op} b")[1] == (TokenType.OPERATOR, op)

    def test_two_char_not_split(self):
        assert kinds("a<=b") == [
            (TokenType.IDENTIFIER, "a"),
            (TokenType.OPERATOR, "<="),
            (TokenType.IDENTIFIER, "b"),
        ]

    def test_punctuation(self):
        assert kinds("(a, b);") == [
            (TokenType.PUNCTUATION, "("),
            (TokenType.IDENTIFIER, "a"),
            (TokenType.PUNCTUATION, ","),
            (TokenType.IDENTIFIER, "b"),
            (TokenType.PUNCTUATION, ")"),
            (TokenType.PUNCTUATION, ";"),
        ]


class TestComments:
    def test_line_comment(self):
        assert kinds("a -- comment\n b") == [
            (TokenType.IDENTIFIER, "a"),
            (TokenType.IDENTIFIER, "b"),
        ]

    def test_line_comment_at_eof(self):
        assert kinds("a -- trailing") == [(TokenType.IDENTIFIER, "a")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [
            (TokenType.IDENTIFIER, "a"),
            (TokenType.IDENTIFIER, "b"),
        ]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError):
            tokenize("a /* oops")


class TestParameters:
    def test_named_parameter(self):
        assert kinds(":b_x") == [(TokenType.PARAMETER, "b_x")]

    def test_parameter_lowercased(self):
        assert kinds(":B_X") == [(TokenType.PARAMETER, "b_x")]


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("a ? b")
        assert excinfo.value.position == 2
