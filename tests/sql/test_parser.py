"""Tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse, parse_expression


class TestSelectBasics:
    def test_minimal_select(self):
        query = parse("SELECT a FROM t")
        select = query.body
        assert select.items == (ast.SelectItem(ast.ColumnRef(None, "a")),)
        assert select.from_items == (ast.NamedTable("t"),)

    def test_star(self):
        query = parse("SELECT * FROM t")
        assert isinstance(query.body.items[0].expr, ast.Star)

    def test_qualified_star(self):
        query = parse("SELECT t.* FROM t")
        assert query.body.items[0].expr == ast.Star("t")

    def test_aliases(self):
        query = parse("SELECT a AS x, b y FROM t u")
        assert query.body.items[0].alias == "x"
        assert query.body.items[1].alias == "y"
        assert query.body.from_items[0] == ast.NamedTable("t", "u")

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").body.distinct

    def test_where(self):
        query = parse("SELECT a FROM t WHERE a > 3")
        assert query.body.where == ast.BinaryOp(
            ">", ast.ColumnRef(None, "a"), ast.Literal(3)
        )

    def test_group_by_having(self):
        query = parse(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) >= 2"
        )
        assert query.body.group_by == (ast.ColumnRef(None, "a"),)
        having = query.body.having
        assert isinstance(having, ast.BinaryOp) and having.op == ">="

    def test_order_limit(self):
        query = parse("SELECT a FROM t ORDER BY a DESC, b LIMIT 7")
        assert query.body.order_by[0].ascending is False
        assert query.body.order_by[1].ascending is True
        assert query.body.limit == 7

    def test_trailing_semicolon(self):
        parse("SELECT a FROM t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t extra stuff ,")


class TestJoins:
    def test_comma_join(self):
        query = parse("SELECT 1 FROM a, b, c")
        assert len(query.body.from_items) == 3

    def test_inner_join_on(self):
        query = parse("SELECT 1 FROM a JOIN b ON a.x = b.x")
        joined = query.body.from_items[0]
        assert isinstance(joined, ast.JoinedTable)
        assert joined.condition is not None

    def test_inner_keyword(self):
        parse("SELECT 1 FROM a INNER JOIN b ON a.x = b.x")

    def test_cross_join(self):
        joined = parse("SELECT 1 FROM a CROSS JOIN b").body.from_items[0]
        assert isinstance(joined, ast.JoinedTable)
        assert joined.condition is None

    def test_natural_join(self):
        joined = parse("SELECT 1 FROM a NATURAL JOIN b").body.from_items[0]
        assert joined.natural

    def test_join_missing_on_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 FROM a JOIN b")

    def test_derived_table(self):
        query = parse("SELECT x FROM (SELECT a AS x FROM t) sub")
        derived = query.body.from_items[0]
        assert isinstance(derived, ast.DerivedTable)
        assert derived.alias == "sub"

    def test_derived_table_requires_alias(self):
        with pytest.raises(ParseError):
            parse("SELECT x FROM (SELECT a FROM t)")


class TestWith:
    def test_single_cte(self):
        query = parse("WITH v AS (SELECT a FROM t) SELECT a FROM v")
        assert len(query.ctes) == 1
        assert query.ctes[0].name == "v"

    def test_multiple_ctes(self):
        query = parse(
            "WITH v AS (SELECT a FROM t), w AS (SELECT a FROM v) "
            "SELECT a FROM w"
        )
        assert [c.name for c in query.ctes] == ["v", "w"]

    def test_cte_column_list(self):
        query = parse("WITH v(x, y) AS (SELECT a, b FROM t) SELECT x FROM v")
        assert query.ctes[0].columns == ("x", "y")


class TestExpressions:
    def test_precedence_or_and(self):
        expr = parse_expression("a OR b AND c")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "OR"

    def test_precedence_arith(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr == ast.BinaryOp(
            "+",
            ast.Literal(1),
            ast.BinaryOp("*", ast.Literal(2), ast.Literal(3)),
        )

    def test_parens_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_not(self):
        expr = parse_expression("NOT a = b")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "NOT"

    def test_unary_minus_folds_literal(self):
        assert parse_expression("-5") == ast.Literal(-5)

    def test_unary_minus_on_column(self):
        expr = parse_expression("-a")
        assert isinstance(expr, ast.UnaryOp)

    def test_neq_normalized(self):
        assert parse_expression("a != b") == parse_expression("a <> b")

    def test_between(self):
        expr = parse_expression("a BETWEEN 1 AND 5")
        assert isinstance(expr, ast.Between) and not expr.negated

    def test_not_between(self):
        assert parse_expression("a NOT BETWEEN 1 AND 5").negated

    def test_is_null(self):
        assert parse_expression("a IS NULL") == ast.IsNull(
            ast.ColumnRef(None, "a")
        )

    def test_is_not_null(self):
        assert parse_expression("a IS NOT NULL").negated

    def test_in_list(self):
        expr = parse_expression("a IN (1, 2, 3)")
        assert isinstance(expr, ast.InList) and len(expr.items) == 3

    def test_not_in_list(self):
        assert parse_expression("a NOT IN (1)").negated

    def test_in_subquery(self):
        expr = parse_expression("a IN (SELECT b FROM t)")
        assert isinstance(expr, ast.InSubquery)

    def test_tuple_in_subquery(self):
        expr = parse_expression("(a, b) IN (SELECT x, y FROM t)")
        assert isinstance(expr.needle, ast.TupleExpr)

    def test_exists(self):
        expr = parse_expression("EXISTS (SELECT 1 FROM t)")
        assert isinstance(expr, ast.ExistsSubquery)

    def test_literals(self):
        assert parse_expression("NULL") == ast.Literal(None)
        assert parse_expression("TRUE") == ast.Literal(True)
        assert parse_expression("FALSE") == ast.Literal(False)
        assert parse_expression("'txt'") == ast.Literal("txt")
        assert parse_expression("2.5") == ast.Literal(2.5)

    def test_parameter(self):
        assert parse_expression(":b_x") == ast.Parameter("b_x")

    def test_case(self):
        expr = parse_expression("CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END")
        assert isinstance(expr, ast.CaseExpr)
        assert expr.default == ast.Literal("lo")

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_expression("CASE ELSE 1 END")

    def test_qualified_column(self):
        assert parse_expression("t.a") == ast.ColumnRef("t", "a")


class TestAggregates:
    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert expr == ast.FuncCall("COUNT", (ast.Star(),))

    def test_count_distinct(self):
        expr = parse_expression("COUNT(DISTINCT a)")
        assert expr.distinct

    def test_avg(self):
        expr = parse_expression("AVG(t.a)")
        assert expr.name == "AVG" and expr.is_aggregate

    def test_scalar_function(self):
        expr = parse_expression("abs(a)")
        assert expr.name == "ABS" and not expr.is_aggregate


class TestPaperListings:
    """All of the paper's SQL listings must parse."""

    def test_listing_1_market_basket(self):
        parse(
            "SELECT i1.item, i2.item FROM Basket i1, Basket i2 "
            "WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item "
            "HAVING COUNT(*) >= 20"
        )

    def test_listing_2_skyband(self):
        parse(
            "SELECT L.id, COUNT(*) FROM Object L, Object R "
            "WHERE L.x<=R.x AND L.y<=R.y AND (L.x<R.x OR L.y<R.y) "
            "GROUP BY L.id HAVING COUNT(*) <= 50"
        )

    def test_listing_3_complex(self):
        parse(
            "SELECT S1.id, S1.attr, S2.attr, COUNT(*) "
            "FROM Product S1, Product S2, Product T1, Product T2 "
            "WHERE S1.id = S2.id AND T1.id = T2.id "
            "AND S1.category = T1.category "
            "AND T1.attr = S1.attr AND T2.attr = S2.attr "
            "AND T1.val > S1.val AND T2.val > S2.val "
            "GROUP BY S1.id, S1.attr, S2.attr HAVING COUNT(*) >= 10"
        )

    def test_listing_4_pairs(self):
        query = parse(
            "WITH pair AS (SELECT s1.pid AS pid1, s2.pid AS pid2, "
            "AVG(s1.hits) as hits1, AVG(s1.hruns) AS hruns1, "
            "AVG(s2.hits) as hits2, AVG(s2.hruns) AS hruns2 "
            "FROM Score s1, Score s2 "
            "WHERE s1.teamid = s2.teamid AND s1.year = s2.year "
            "AND s1.round = s2.round AND s1.pid < s2.pid "
            "GROUP BY s1.pid, s2.pid HAVING COUNT(*) >= 3) "
            "SELECT L.pid1, L.pid2, COUNT(*) FROM pair L, pair R "
            "WHERE R.hits1 >= L.hits1 AND R.hruns1 >= L.hruns1 "
            "AND R.hits2 >= L.hits2 AND R.hruns2 >= L.hruns2 "
            "AND (R.hits1 > L.hits1 OR R.hruns1 > L.hruns1 "
            "OR R.hits2 > L.hits2 OR R.hruns2 > L.hruns2) "
            "GROUP BY L.pid1, L.pid2 HAVING COUNT(*) <= 20"
        )
        assert len(query.ctes) == 1

    def test_example_7_discount(self):
        parse(
            "SELECT item, rate FROM Basket L, Discount R "
            "WHERE L.did = R.did GROUP BY item, rate "
            "HAVING COUNT(DISTINCT bid) >= 25"
        )

    def test_reducer_shape(self):
        parse(
            "SELECT * FROM Product WHERE (id, attr) IN "
            "(SELECT id, attr FROM Product GROUP BY id, attr "
            "HAVING COUNT(*) >= 10)"
        )
