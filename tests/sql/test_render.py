"""Round-trip tests: parse -> render -> parse yields the same AST."""

import pytest

from repro.sql import ast
from repro.sql.parser import parse, parse_expression
from repro.sql.render import render

ROUND_TRIP_QUERIES = [
    "SELECT a FROM t",
    "SELECT DISTINCT a, b AS x FROM t u WHERE a > 3",
    "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) >= 2",
    "SELECT a FROM t ORDER BY a DESC, b LIMIT 5",
    "SELECT 1 FROM a JOIN b ON a.x = b.x",
    "SELECT 1 FROM a CROSS JOIN b",
    "SELECT 1 FROM a NATURAL JOIN b",
    "SELECT x FROM (SELECT a AS x FROM t) sub",
    "WITH v AS (SELECT a FROM t) SELECT a FROM v",
    "WITH v(c1, c2) AS (SELECT a, b FROM t) SELECT c1 FROM v",
    "SELECT * FROM t WHERE (a, b) IN (SELECT x, y FROM u)",
    "SELECT a FROM t WHERE a IN (1, 2, 3) AND b NOT IN (4)",
    "SELECT a FROM t WHERE a BETWEEN 1 AND 2 OR b IS NOT NULL",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)",
    "SELECT CASE WHEN a > 0 THEN 'p' ELSE 'n' END FROM t",
    "SELECT COUNT(DISTINCT a), SUM(b * 2), AVG(c) FROM t",
    "SELECT a FROM t WHERE NOT (a = 1 OR a = 2)",
    "SELECT t.* FROM t",
    "SELECT a FROM t WHERE s = 'it''s'",
    "SELECT -a, a - -1 FROM t",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
def test_query_round_trip(sql):
    first = parse(sql)
    text = render(first)
    second = parse(text)
    assert first == second, f"round trip changed AST for: {text}"


ROUND_TRIP_EXPRS = [
    "a + b * c",
    "(a + b) * c",
    "a <= b AND (c < d OR e >= f)",
    "x % 2 = 0",
    "a || b",
    ":param + 1",
    "NULL",
    "TRUE AND FALSE",
    "LEAST(a, b, c)",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_EXPRS)
def test_expression_round_trip(sql):
    first = parse_expression(sql)
    assert parse_expression(render(first)) == first


class TestLiteralRendering:
    def test_string_escaping(self):
        assert render(ast.Literal("it's")) == "'it''s'"

    def test_null_true_false(self):
        assert render(ast.Literal(None)) == "NULL"
        assert render(ast.Literal(True)) == "TRUE"
        assert render(ast.Literal(False)) == "FALSE"

    def test_numbers(self):
        assert render(ast.Literal(5)) == "5"
        assert render(ast.Literal(2.5)) == "2.5"


class TestStructuredRendering:
    def test_parenthesizes_nested_binops(self):
        expr = ast.BinaryOp(
            "*",
            ast.BinaryOp("+", ast.Literal(1), ast.Literal(2)),
            ast.Literal(3),
        )
        assert render(expr) == "(1 + 2) * 3"

    def test_render_select_item_alias(self):
        query = parse("SELECT a AS x FROM t")
        assert "AS x" in render(query)

    def test_render_unknown_type_raises(self):
        with pytest.raises(TypeError):
            render(object())
