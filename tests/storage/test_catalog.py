"""Tests for the database catalog and constraint metadata."""

import pytest

from repro.errors import CatalogError, SchemaError
from repro.storage.catalog import Database
from repro.storage.schema import TableSchema
from repro.storage.types import SqlType


SCHEMA = TableSchema.of(
    ("id", SqlType.INTEGER), ("category", SqlType.TEXT), ("val", SqlType.FLOAT)
)


class TestTables:
    def test_create_and_get(self):
        db = Database()
        table = db.create_table("t", SCHEMA)
        assert db.table("T") is table
        assert db.has_table("t")
        assert db.table_names == ["t"]

    def test_create_from_columns(self):
        db = Database()
        db.create_table("t", list(SCHEMA.columns))
        assert db.table("t").schema == SCHEMA

    def test_duplicate_rejected(self):
        db = Database()
        db.create_table("t", SCHEMA)
        with pytest.raises(CatalogError):
            db.create_table("T", SCHEMA)

    def test_missing_table(self):
        with pytest.raises(CatalogError):
            Database().table("ghost")

    def test_drop(self):
        db = Database()
        db.create_table("t", SCHEMA, primary_key=("id",))
        db.drop_table("t")
        assert not db.has_table("t")
        with pytest.raises(CatalogError):
            db.drop_table("t")


class TestKeysAndFds:
    def test_primary_key_creates_fd_and_index(self):
        db = Database()
        table = db.create_table("t", SCHEMA, primary_key=("id",))
        assert db.primary_key("t") == ("id",)
        assert db.is_superkey("t", ["id"])
        assert table.find_hash_index(["id"]) is not None

    def test_declared_fd_participates_in_closure(self):
        db = Database()
        db.create_table("t", SCHEMA)
        db.declare_fd("t", ["id"], ["category"])
        assert db.fds("t").determines(["id"], ["category"])
        assert not db.is_superkey("t", ["id"])  # val not determined

    def test_fd_on_unknown_column_rejected(self):
        db = Database()
        db.create_table("t", SCHEMA)
        with pytest.raises(SchemaError):
            db.declare_fd("t", ["missing"], ["val"])

    def test_key_on_unknown_column_rejected(self):
        db = Database()
        db.create_table("t", SCHEMA)
        with pytest.raises(SchemaError):
            db.declare_key("t", ["missing"])

    def test_composite_superkey(self):
        db = Database()
        db.create_table("t", SCHEMA, primary_key=("id", "category"))
        assert db.is_superkey("t", ["id", "category", "val"])
        assert not db.is_superkey("t", ["category"])


class TestDomains:
    def test_declare_and_query_domain(self):
        db = Database()
        db.create_table("t", SCHEMA)
        db.declare_domain("t", "val", lower=0)
        assert db.domain("t", "val") == (0, None)
        assert db.is_nonnegative("t", "val")
        assert not db.is_nonnegative("t", "id")

    def test_negative_lower_bound_is_not_nonnegative(self):
        db = Database()
        db.create_table("t", SCHEMA)
        db.declare_domain("t", "val", lower=-1)
        assert not db.is_nonnegative("t", "val")

    def test_domain_on_unknown_column_rejected(self):
        db = Database()
        db.create_table("t", SCHEMA)
        with pytest.raises(SchemaError):
            db.declare_domain("t", "missing", lower=0)
