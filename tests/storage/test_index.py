"""Tests for hash and sorted indexes."""

import pytest
from hypothesis import given, strategies as st

from repro.storage.index import HashIndex, SortedIndex, build_index


ROWS = [
    (1, 10, "a"),
    (2, 20, "b"),
    (3, 20, "c"),
    (4, 30, "a"),
    (5, None, "d"),
]


def make_hash() -> HashIndex:
    index = HashIndex("ix", (1,))
    for row_id, row in enumerate(ROWS):
        index.insert(row_id, row)
    return index


def make_sorted() -> SortedIndex:
    index = SortedIndex("ix", (1,))
    for row_id, row in enumerate(ROWS):
        index.insert(row_id, row)
    return index


class TestHashIndex:
    def test_lookup(self):
        index = make_hash()
        assert set(index.lookup((20,))) == {1, 2}
        assert index.lookup((10,)) == (0,)
        assert index.lookup((99,)) == ()

    def test_null_keys_not_indexed(self):
        index = make_hash()
        assert index.lookup((None,)) == ()
        assert len(index) == 4  # row 4 (NULL) skipped

    def test_distinct_keys(self):
        assert make_hash().distinct_keys == 3

    def test_composite_key(self):
        index = HashIndex("ix", (1, 2))
        for row_id, row in enumerate(ROWS):
            index.insert(row_id, row)
        assert index.lookup((20, "b")) == (1,)
        assert index.lookup((20, "x")) == ()

    def test_clear(self):
        index = make_hash()
        index.clear()
        assert len(index) == 0


class TestSortedIndex:
    def test_equality_lookup(self):
        index = make_sorted()
        assert set(index.lookup((20,))) == {1, 2}
        assert index.lookup((11,)) == ()

    def test_range_inclusive(self):
        index = make_sorted()
        assert set(index.range_scan(low=20, high=30)) == {1, 2, 3}

    def test_range_strict(self):
        index = make_sorted()
        assert set(index.range_scan(low=20, low_strict=True)) == {3}
        assert set(index.range_scan(high=20, high_strict=True)) == {0}

    def test_range_unbounded(self):
        index = make_sorted()
        assert set(index.range_scan()) == {0, 1, 2, 3}

    def test_null_keys_not_indexed(self):
        index = make_sorted()
        assert 4 not in set(index.range_scan())

    def test_incremental_inserts_stay_sorted(self):
        index = SortedIndex("ix", (0,))
        for value in (5, 1, 3, 2, 4):
            index.insert(value, (value,))
        assert list(index.range_scan(low=2, high=4)) == [2, 3, 4]

    def test_len_flushes_pending(self):
        index = make_sorted()
        assert len(index) == 4


class TestBuildIndex:
    def test_build_hash(self):
        index = build_index("hash", "ix", (0,), ROWS)
        assert isinstance(index, HashIndex)
        assert index.lookup((3,)) == (2,)

    def test_build_sorted(self):
        index = build_index("sorted", "ix", (0,), ROWS)
        assert isinstance(index, SortedIndex)

    def test_build_unknown_kind(self):
        with pytest.raises(ValueError):
            build_index("btree", "ix", (0,), ROWS)


@given(
    st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=60),
    st.integers(min_value=-50, max_value=50),
    st.integers(min_value=-50, max_value=50),
)
def test_sorted_range_matches_bruteforce(values, low, high):
    """Property: range_scan returns exactly the ids of in-range values."""
    index = SortedIndex("ix", (0,))
    for row_id, value in enumerate(values):
        index.insert(row_id, (value,))
    got = set(index.range_scan(low=low, high=high))
    expected = {i for i, v in enumerate(values) if low <= v <= high}
    assert got == expected

    got_strict = set(
        index.range_scan(low=low, high=high, low_strict=True, high_strict=True)
    )
    expected_strict = {i for i, v in enumerate(values) if low < v < high}
    assert got_strict == expected_strict
