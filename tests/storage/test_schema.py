"""Tests for table schemas."""

import pytest

from repro.errors import SchemaError
from repro.storage.schema import Column, TableSchema
from repro.storage.types import SqlType


def make_schema() -> TableSchema:
    return TableSchema.of(
        ("id", SqlType.INTEGER), ("name", SqlType.TEXT), ("score", SqlType.FLOAT)
    )


class TestConstruction:
    def test_column_names_lowercased(self):
        schema = TableSchema([Column("ID", SqlType.INTEGER)])
        assert schema.column_names == ("id",)

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema.of(("a", SqlType.INTEGER), ("A", SqlType.TEXT))

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema([])

    def test_invalid_column_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("not a name", SqlType.TEXT)

    def test_len_and_iter(self):
        schema = make_schema()
        assert len(schema) == 3
        assert [c.name for c in schema] == ["id", "name", "score"]

    def test_equality_and_hash(self):
        assert make_schema() == make_schema()
        assert hash(make_schema()) == hash(make_schema())
        other = TableSchema.of(("id", SqlType.INTEGER))
        assert make_schema() != other


class TestLookup:
    def test_index_of_case_insensitive(self):
        schema = make_schema()
        assert schema.index_of("NAME") == 1

    def test_index_of_missing(self):
        with pytest.raises(SchemaError):
            make_schema().index_of("missing")

    def test_contains(self):
        schema = make_schema()
        assert "score" in schema
        assert "SCORE" in schema
        assert "other" not in schema

    def test_column_accessor(self):
        assert make_schema().column("id").type is SqlType.INTEGER


class TestRows:
    def test_validate_row_normalizes(self):
        schema = make_schema()
        row = schema.validate_row((1, "x", 2))
        assert row == (1, "x", 2.0)
        assert isinstance(row[2], float)

    def test_validate_row_wrong_arity(self):
        with pytest.raises(SchemaError):
            make_schema().validate_row((1, "x"))

    def test_validate_row_wrong_type(self):
        with pytest.raises(SchemaError):
            make_schema().validate_row(("x", "x", 1.0))

    def test_not_null_enforced(self):
        schema = TableSchema([Column("id", SqlType.INTEGER, nullable=False)])
        with pytest.raises(SchemaError):
            schema.validate_row((None,))

    def test_nullable_allows_none(self):
        assert make_schema().validate_row((None, None, None)) == (None, None, None)


class TestProject:
    def test_project_reorders(self):
        projected = make_schema().project(["score", "id"])
        assert projected.column_names == ("score", "id")

    def test_project_missing_column(self):
        with pytest.raises(SchemaError):
            make_schema().project(["nope"])
