"""Tests for the ANALYZE statistics subsystem.

Covers the tentpole's statistical machinery: KMV distinct-count
sketches with bounded relative error, the exact→sketch spill
threshold, equi-width histograms, and incremental freshness of
collected statistics under later inserts.
"""

import random

import pytest

from repro.storage.catalog import Database
from repro.storage.schema import TableSchema
from repro.storage.statistics import (
    DistinctCounter,
    Histogram,
    KMVSketch,
    analyze_table,
    stable_hash64,
)
from repro.storage.table import Table
from repro.storage.types import SqlType


def make_table(rows=()):
    table = Table(
        "t", TableSchema.of(("id", SqlType.INTEGER), ("name", SqlType.TEXT))
    )
    table.insert_many(rows)
    return table


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64("abc") == stable_hash64("abc")
        assert stable_hash64(1) != stable_hash64("1")

    def test_spread(self):
        hashes = {stable_hash64(i) for i in range(1000)}
        assert len(hashes) == 1000


class TestKMVSketch:
    @pytest.mark.parametrize("true_distinct", [1000, 10_000, 50_000])
    def test_bounded_relative_error(self, true_distinct):
        # Expected relative error ~1/sqrt(k-2) ≈ 6% at k=256; assert a
        # generous 4-sigma bound so the test is deterministic-safe.
        sketch = KMVSketch()
        for i in range(true_distinct):
            sketch.add(f"value-{i}")
        estimate = sketch.estimate()
        assert abs(estimate - true_distinct) / true_distinct < 0.25

    def test_duplicates_do_not_inflate(self):
        sketch = KMVSketch()
        for _ in range(5):
            for i in range(300):
                sketch.add(i)
        estimate = sketch.estimate()
        assert abs(estimate - 300) / 300 < 0.25

    def test_exact_below_k(self):
        sketch = KMVSketch(k=64)
        for i in range(50):
            sketch.add(i)
        assert sketch.estimate() == 50.0

    def test_deterministic_across_instances(self):
        a, b = KMVSketch(), KMVSketch()
        values = [f"v{i}" for i in range(5000)]
        for v in values:
            a.add(v)
        for v in reversed(values):
            b.add(v)
        assert a.estimate() == b.estimate()


class TestDistinctCounter:
    def test_exact_below_threshold(self):
        counter = DistinctCounter(threshold=100)
        for i in range(100):
            counter.add(i)
        assert counter.is_exact
        assert counter.estimate() == 100.0

    def test_spills_to_sketch_above_threshold(self):
        counter = DistinctCounter(threshold=100)
        for i in range(5000):
            counter.add(i)
        assert not counter.is_exact
        assert abs(counter.estimate() - 5000) / 5000 < 0.25


class TestHistogram:
    def test_fraction_below_uniform(self):
        histogram = Histogram.build(list(range(1000)))
        assert histogram.fraction_below(-1, inclusive=True) == 0.0
        assert histogram.fraction_below(2000, inclusive=True) == 1.0
        # Uniform data: the estimator should land near the true CDF.
        for value, truth in ((250, 0.25), (500, 0.5), (750, 0.75)):
            estimate = histogram.fraction_below(value, inclusive=False)
            assert abs(estimate - truth) < 0.05

    def test_fraction_between(self):
        histogram = Histogram.build(list(range(1000)))
        estimate = histogram.fraction_between(100, 300)
        assert abs(estimate - 0.2) < 0.05

    def test_single_point(self):
        histogram = Histogram.build([7.0] * 10)
        assert histogram.fraction_below(7.0, inclusive=True) == 1.0
        assert histogram.fraction_below(7.0, inclusive=False) == 0.0

    def test_out_of_range_inserts_clamp(self):
        histogram = Histogram.build([float(v) for v in range(10)])
        histogram.add(1e9)  # clamped into the last bucket, not lost
        assert histogram.total == 11


class TestAnalyzeTable:
    def test_column_stats(self):
        rows = [(i % 10, f"name{i % 3}") for i in range(100)]
        rng = random.Random(7)
        rng.shuffle(rows)
        stats = analyze_table(make_table(rows))
        assert stats.row_count == 100
        ids = stats.column("id")
        assert ids.distinct_count == 10
        assert ids.minimum == 0 and ids.maximum == 9
        assert ids.null_fraction == 0.0
        assert ids.histogram is not None
        names = stats.column("name")
        assert names.distinct_count == 3
        assert names.histogram is None  # text column: no histogram

    def test_null_fraction(self):
        stats = analyze_table(make_table([(1, None), (2, "x"), (3, None), (4, "y")]))
        assert stats.column("name").null_fraction == 0.5

    def test_incrementally_fresh_on_insert(self):
        table = make_table([(i, f"n{i}") for i in range(20)])
        stats = table.analyze()
        assert stats.row_count == 20
        table.insert((99, "fresh"))
        # Same object, updated in place — no re-ANALYZE required.
        assert table.statistics is stats
        assert stats.row_count == 21
        ids = stats.column("id")
        assert ids.maximum == 99
        assert ids.distinct_count == 21

    def test_invalidate(self):
        table = make_table([(1, "a")])
        table.analyze()
        table.invalidate_statistics()
        assert table.statistics is None

    def test_summary_smoke(self):
        text = analyze_table(make_table([(1, "a")])).summary()
        assert "t: 1 rows" in text and "id" in text


class TestDatabaseAnalyze:
    def test_analyze_all_tables(self):
        db = Database()
        table = db.create_table(
            "u", TableSchema.of(("id", SqlType.INTEGER), ("name", SqlType.TEXT))
        )
        table.insert_many([(1, "a"), (2, "b")])
        collected = db.analyze()
        assert set(collected) == {"u"}
        assert db.statistics("u").row_count == 2
        assert db.table("u").statistics is collected["u"]
