"""Tests for the Table container."""

import pytest

from repro.errors import CatalogError, SchemaError
from repro.storage.schema import TableSchema
from repro.storage.table import Table
from repro.storage.types import SqlType


def make_table() -> Table:
    return Table(
        "t", TableSchema.of(("id", SqlType.INTEGER), ("name", SqlType.TEXT))
    )


class TestRows:
    def test_insert_returns_row_id(self):
        table = make_table()
        assert table.insert((1, "a")) == 0
        assert table.insert((2, "b")) == 1
        assert len(table) == 2

    def test_insert_validates(self):
        with pytest.raises(SchemaError):
            make_table().insert(("x", "a"))

    def test_insert_many(self):
        table = make_table()
        assert table.insert_many([(1, "a"), (2, "b")]) == 2

    def test_insert_dicts(self):
        table = make_table()
        table.insert_dicts([{"name": "a", "id": 1}, {"id": 2}])
        assert table.rows[0] == (1, "a")
        assert table.rows[1] == (2, None)

    def test_row_access(self):
        table = make_table()
        table.insert((7, "x"))
        assert table.row(0) == (7, "x")

    def test_column_values(self):
        table = make_table()
        table.insert_many([(1, "a"), (2, "b")])
        assert table.column_values("name") == ["a", "b"]

    def test_iteration(self):
        table = make_table()
        table.insert_many([(1, "a"), (2, "b")])
        assert list(table) == [(1, "a"), (2, "b")]

    def test_to_dicts(self):
        table = make_table()
        table.insert((1, "a"))
        assert table.to_dicts() == [{"id": 1, "name": "a"}]

    def test_truncate(self):
        table = make_table()
        table.insert((1, "a"))
        table.create_index("ix", ["id"])
        table.truncate()
        assert len(table) == 0
        assert table.find_hash_index(["id"]).lookup((1,)) == ()


class TestIndexes:
    def test_index_maintained_on_insert(self):
        table = make_table()
        index = table.create_index("ix", ["id"])
        table.insert((5, "x"))
        assert index.lookup((5,)) == (0,)

    def test_index_bulk_loaded(self):
        table = make_table()
        table.insert_many([(1, "a"), (2, "b")])
        index = table.create_index("ix", ["id"])
        assert index.lookup((2,)) == (1,)

    def test_duplicate_index_name_rejected(self):
        table = make_table()
        table.create_index("ix", ["id"])
        with pytest.raises(CatalogError):
            table.create_index("IX", ["name"])

    def test_drop_index(self):
        table = make_table()
        table.create_index("ix", ["id"])
        table.drop_index("ix")
        assert table.find_hash_index(["id"]) is None

    def test_drop_missing_index(self):
        with pytest.raises(CatalogError):
            make_table().drop_index("nope")

    def test_unknown_kind(self):
        with pytest.raises(SchemaError):
            make_table().create_index("ix", ["id"], kind="gist")

    def test_find_hash_index_order_insensitive(self):
        table = make_table()
        table.create_index("ix", ["name", "id"], kind="hash")
        assert table.find_hash_index(["id", "name"]) is not None

    def test_find_sorted_index_by_leading_column(self):
        table = make_table()
        table.create_index("ix", ["id", "name"], kind="sorted")
        assert table.find_sorted_index("id") is not None
        assert table.find_sorted_index("name") is None


class TestFootprint:
    def test_estimated_bytes_grows_with_rows(self):
        table = make_table()
        empty = table.estimated_bytes()
        table.insert((1, "abcdef"))
        assert table.estimated_bytes() > empty
