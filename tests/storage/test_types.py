"""Tests for SQL types and three-valued logic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchemaError
from repro.storage.types import (
    SqlType,
    infer_type,
    is_true,
    sql_and,
    sql_compare,
    sql_equal,
    sql_not,
    sql_or,
)


class TestValidation:
    def test_integer_accepts_int(self):
        assert SqlType.INTEGER.validate(5) == 5

    def test_integer_rejects_bool(self):
        with pytest.raises(SchemaError):
            SqlType.INTEGER.validate(True)

    def test_integer_rejects_float(self):
        with pytest.raises(SchemaError):
            SqlType.INTEGER.validate(1.5)

    def test_float_widens_int(self):
        value = SqlType.FLOAT.validate(3)
        assert value == 3.0 and isinstance(value, float)

    def test_float_rejects_text(self):
        with pytest.raises(SchemaError):
            SqlType.FLOAT.validate("3.0")

    def test_text_accepts_str(self):
        assert SqlType.TEXT.validate("abc") == "abc"

    def test_text_rejects_number(self):
        with pytest.raises(SchemaError):
            SqlType.TEXT.validate(3)

    def test_boolean_accepts_bool(self):
        assert SqlType.BOOLEAN.validate(False) is False

    def test_boolean_rejects_int(self):
        with pytest.raises(SchemaError):
            SqlType.BOOLEAN.validate(0)

    @pytest.mark.parametrize("sql_type", list(SqlType))
    def test_null_accepted_everywhere(self, sql_type):
        assert sql_type.validate(None) is None

    def test_is_numeric(self):
        assert SqlType.INTEGER.is_numeric
        assert SqlType.FLOAT.is_numeric
        assert not SqlType.TEXT.is_numeric
        assert not SqlType.BOOLEAN.is_numeric


class TestInference:
    def test_infer_each_type(self):
        assert infer_type(1) is SqlType.INTEGER
        assert infer_type(1.0) is SqlType.FLOAT
        assert infer_type("x") is SqlType.TEXT
        assert infer_type(True) is SqlType.BOOLEAN

    def test_infer_null_fails(self):
        with pytest.raises(SchemaError):
            infer_type(None)

    def test_infer_unsupported_fails(self):
        with pytest.raises(SchemaError):
            infer_type([1, 2])


class TestThreeValuedLogic:
    def test_equal_null_is_unknown(self):
        assert sql_equal(None, 1) is None
        assert sql_equal(1, None) is None
        assert sql_equal(None, None) is None

    def test_equal_values(self):
        assert sql_equal(1, 1) is True
        assert sql_equal(1, 2) is False

    def test_compare(self):
        assert sql_compare(1, 2) == -1
        assert sql_compare(2, 1) == 1
        assert sql_compare(2, 2) == 0
        assert sql_compare(None, 1) is None

    def test_and_truth_table(self):
        assert sql_and(True, True) is True
        assert sql_and(True, False) is False
        assert sql_and(False, None) is False
        assert sql_and(None, True) is None
        assert sql_and(None, None) is None

    def test_or_truth_table(self):
        assert sql_or(False, False) is False
        assert sql_or(True, None) is True
        assert sql_or(None, False) is None
        assert sql_or(None, None) is None

    def test_not(self):
        assert sql_not(True) is False
        assert sql_not(False) is True
        assert sql_not(None) is None

    def test_is_true_collapses(self):
        assert is_true(True)
        assert not is_true(False)
        assert not is_true(None)

    @given(st.sampled_from([True, False, None]), st.sampled_from([True, False, None]))
    def test_de_morgan(self, a, b):
        """Kleene logic satisfies De Morgan's laws."""
        assert sql_not(sql_and(a, b)) == sql_or(sql_not(a), sql_not(b))
        assert sql_not(sql_or(a, b)) == sql_and(sql_not(a), sql_not(b))

    @given(st.sampled_from([True, False, None]))
    def test_double_negation(self, a):
        assert sql_not(sql_not(a)) == a
