"""Coverage for the repro.errors hierarchy.

Every public error class must be raisable from real library paths,
catchable with a single ``except ReproError``, and carry its declared
extras (``LexerError.position``, budget fields, partial stats).
"""

import inspect

import pytest

from repro import Database, EngineConfig, SmartIceberg, SqlType, TableSchema, execute
from repro import errors as errors_module
from repro.errors import (
    BudgetExceededError,
    CatalogError,
    ExecutionError,
    GovernorError,
    InjectedFaultError,
    LexerError,
    OptimizationError,
    ParseError,
    PlanningError,
    QuantifierEliminationError,
    QueryCancelledError,
    ReproError,
    SchemaError,
    SqlError,
    TypeCheckError,
)
from repro.sql.parser import parse


def tiny_db() -> Database:
    db = Database()
    table = db.create_table(
        "t",
        TableSchema.of(("id", SqlType.INTEGER), ("name", SqlType.TEXT)),
        primary_key=("id",),
    )
    table.insert_many([(1, "a"), (2, "b")])
    return db


class TestHierarchyShape:
    def test_every_public_error_derives_from_repro_error(self):
        classes = [
            obj
            for _, obj in inspect.getmembers(errors_module, inspect.isclass)
            if issubclass(obj, BaseException)
        ]
        assert len(classes) >= 14
        for cls in classes:
            assert issubclass(cls, ReproError), cls.__name__

    def test_governor_errors_are_execution_errors(self):
        assert issubclass(BudgetExceededError, GovernorError)
        assert issubclass(QueryCancelledError, GovernorError)
        assert issubclass(GovernorError, ExecutionError)
        assert issubclass(InjectedFaultError, ExecutionError)
        assert issubclass(TypeCheckError, ExecutionError)

    def test_sql_errors_group_frontend_failures(self):
        assert issubclass(LexerError, SqlError)
        assert issubclass(ParseError, SqlError)


class TestRaisedFromLibraryPaths:
    def test_lexer_error_keeps_position(self):
        with pytest.raises(LexerError) as info:
            parse("SELECT § FROM t")
        assert info.value.position == 7
        assert "offset 7" in str(info.value)

    def test_parse_error(self):
        with pytest.raises(ParseError):
            parse("SELECT FROM WHERE")

    def test_catalog_error(self):
        with pytest.raises(CatalogError):
            Database().table("missing")

    def test_schema_error(self):
        with pytest.raises(SchemaError):
            TableSchema.of()  # zero columns

    def test_planning_error(self):
        with pytest.raises(PlanningError):
            execute(tiny_db(), "SELECT MEDIAN(id) FROM t")

    def test_execution_error_division_by_zero(self):
        with pytest.raises(ExecutionError, match="division by zero"):
            execute(tiny_db(), "SELECT id / 0 FROM t")

    def test_type_check_error_wraps_runtime_type_mismatch(self):
        """A compiled expression hitting a Python TypeError surfaces as
        TypeCheckError with partial stats, not as a bare TypeError."""
        db = tiny_db()
        with pytest.raises(TypeCheckError) as info:
            execute(db, "SELECT id FROM t WHERE id < name")
        assert info.value.stats is not None
        assert info.value.__cause__ is not None

    def test_budget_exceeded_error(self):
        db = tiny_db()
        config = EngineConfig(max_rows_scanned=0)
        with pytest.raises(BudgetExceededError) as info:
            execute(db, "SELECT id FROM t", config)
        assert info.value.budget == "rows_scanned"
        assert info.value.stats is not None

    def test_query_cancelled_error(self):
        from repro import CancelToken

        token = CancelToken()
        token.cancel("shutdown")
        config = EngineConfig(cancel_token=token)
        with pytest.raises(QueryCancelledError, match="shutdown"):
            execute(tiny_db(), "SELECT id FROM t", config)

    def test_injected_fault_error(self):
        from repro.testing import FaultPlan, FaultSpec

        plan = FaultPlan([FaultSpec(site="scan")])
        config = EngineConfig(fault_plan=plan)
        with pytest.raises(InjectedFaultError) as info:
            execute(tiny_db(), "SELECT id FROM t", config)
        assert info.value.site == "scan"

    def test_optimization_error(self):
        with pytest.raises(OptimizationError):
            SmartIceberg(tiny_db(), binding_order="bogus")

    def test_quantifier_elimination_error(self):
        from repro.logic.formula import Constraint, LinearTerm

        with pytest.raises(QuantifierEliminationError):
            Constraint(LinearTerm({}, 0), "!=")


class TestCatchAll:
    """Each failure above is catchable as plain ReproError."""

    @pytest.mark.parametrize(
        "trigger",
        [
            lambda: parse("SELECT §"),
            lambda: parse("SELECT FROM"),
            lambda: Database().table("missing"),
            lambda: TableSchema.of(),
            lambda: execute(tiny_db(), "SELECT MEDIAN(id) FROM t"),
            lambda: execute(tiny_db(), "SELECT id / 0 FROM t"),
            lambda: execute(tiny_db(), "SELECT id FROM t WHERE id < name"),
            lambda: execute(
                tiny_db(), "SELECT id FROM t", EngineConfig(max_rows_scanned=0)
            ),
            lambda: SmartIceberg(tiny_db(), binding_order="bogus"),
        ],
    )
    def test_single_except_clause_suffices(self, trigger):
        with pytest.raises(ReproError):
            trigger()
