"""The deterministic fault-injection harness, unit and end-to-end.

The end-to-end matrix is the PR's robustness claim: for every workload
query and every injection site, in both execution modes, a faulted run
either recovers with exactly the un-faulted rows or fails with a typed
:class:`ReproError` carrying accurate partial stats — never a bare
``KeyError``/``RecursionError``/``TypeError``.
"""

import pytest

from repro import SmartIceberg
from repro.errors import (
    InjectedFaultError,
    QuantifierEliminationError,
    ReproError,
)
from repro.testing import FAULT_SITES, FaultPlan, FaultSpec
from repro.workloads import BaseballConfig, figure1_queries, make_batting_db

BATTING = make_batting_db(BaseballConfig(n_rows=120, seed=7))
QUERIES = {name: q.sql for name, q in figure1_queries().items()}

#: Optimizer-time sites are observed once or twice per query, so their
#: count trigger must fire early; execution sites get a later trigger
#: to prove mid-run aborts leave consistent partial stats.
TRIGGER_AFTER = {"qe": 0, "reducer": 0, "scan": 20, "join-pair": 20,
                 "cache-insert": 2, "inner-eval": 2,
                 # Serving-layer sites: never observed by a bare
                 # SmartIceberg, so the matrix proves the un-faulted
                 # rows come back exactly (tests/serve exercises the
                 # sites themselves through IcebergServer).
                 "plan-cache": 0, "admission": 0}

_baselines = {}


def baseline(name, mode):
    key = (name, mode)
    if key not in _baselines:
        result = SmartIceberg(BATTING, execution_mode=mode).execute(QUERIES[name])
        _baselines[key] = result.sorted_rows()
    return _baselines[key]


class TestFaultSpecValidation:
    def test_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="network")

    def test_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(site="scan", kind="flaky")

    def test_negative_after(self):
        with pytest.raises(ValueError, match="after"):
            FaultSpec(site="scan", after=-1)

    def test_probability_range(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(site="scan", probability=1.5)

    def test_count_and_seed_triggers_are_exclusive(self):
        with pytest.raises(ValueError, match="either"):
            FaultSpec(site="scan", after=3, probability=0.5)

    def test_negative_delay(self):
        with pytest.raises(ValueError, match="delay_seconds"):
            FaultSpec(site="scan", kind="slow", delay_seconds=-1.0)

    def test_bad_times(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec(site="scan", times=0)


class TestFaultPlanUnit:
    def test_count_trigger_fires_after_n_hits(self):
        plan = FaultPlan([FaultSpec(site="scan", after=2)])
        assert plan.observe("scan") == 0.0
        assert plan.observe("scan") == 0.0
        with pytest.raises(InjectedFaultError) as info:
            plan.observe("scan")
        assert info.value.site == "scan"
        assert plan.hits("scan") == 3
        assert plan.fired(0) == 1

    def test_times_caps_firings(self):
        plan = FaultPlan(
            [FaultSpec(site="scan", kind="slow", delay_seconds=2.0, times=2)]
        )
        delays = [plan.observe("scan") for _ in range(5)]
        assert delays == [2.0, 2.0, 0.0, 0.0, 0.0]

    def test_unlimited_times(self):
        plan = FaultPlan(
            [FaultSpec(site="scan", kind="slow", delay_seconds=1.0, times=None)]
        )
        assert sum(plan.observe("scan") for _ in range(10)) == 10.0

    def test_sites_count_independently(self):
        plan = FaultPlan([FaultSpec(site="inner-eval", after=1)])
        for _ in range(10):
            plan.observe("scan")
        plan.observe("inner-eval")  # hit 1: below trigger
        with pytest.raises(InjectedFaultError):
            plan.observe("inner-eval")

    def test_unknown_site_observation_rejected(self):
        plan = FaultPlan([])
        with pytest.raises(ValueError, match="unknown fault site"):
            plan.observe("typo")

    def test_custom_exception_instance_and_factory(self):
        boom = QuantifierEliminationError("synthetic QE failure")
        plan = FaultPlan([FaultSpec(site="qe", exception=boom)])
        with pytest.raises(QuantifierEliminationError):
            plan.observe("qe")
        plan = FaultPlan(
            [FaultSpec(site="qe", exception=lambda: KeyError("raw"))]
        )
        with pytest.raises(KeyError):
            plan.observe("qe")

    def test_seeded_probability_is_reproducible(self):
        def firing_pattern(seed):
            plan = FaultPlan(
                [
                    FaultSpec(
                        site="scan", kind="slow", probability=0.3,
                        delay_seconds=1.0, times=None,
                    )
                ],
                seed=seed,
            )
            return [plan.observe("scan") for _ in range(40)]

        first = firing_pattern(1234)
        assert firing_pattern(1234) == first
        assert 0.0 < sum(first) < 40.0  # fired sometimes, not always
        assert firing_pattern(99) != first

    def test_per_spec_streams_are_independent(self):
        """Adding a spec must not change another spec's firing pattern."""

        def scan_pattern(specs):
            plan = FaultPlan(specs, seed=5)
            return [plan.observe("scan") for _ in range(30)]

        lone = FaultSpec(
            site="scan", kind="slow", probability=0.5,
            delay_seconds=1.0, times=None,
        )
        sibling = FaultSpec(
            site="inner-eval", kind="slow", probability=0.5,
            delay_seconds=1.0, times=None,
        )
        assert scan_pattern([lone]) == scan_pattern([lone, sibling])


class TestFaultMatrix:
    """Q1-Q8 x every site x both modes: recover or fail typed."""

    @pytest.mark.parametrize("mode", ["row", "batch"])
    @pytest.mark.parametrize("site", FAULT_SITES)
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_error_fault(self, name, site, mode):
        plan = FaultPlan(
            [FaultSpec(site=site, kind="error", after=TRIGGER_AFTER[site])]
        )
        system = SmartIceberg(BATTING, execution_mode=mode, fault_plan=plan)
        try:
            result = system.execute(QUERIES[name])
        except ReproError as error:
            assert plan.fired(0), "error escaped without the fault firing"
            # Typed failure with accurate partial stats (optimizer-time
            # faults abort before execution and carry no stats).
            if site not in ("qe", "reducer"):
                assert error.stats is not None
                counters = error.stats.as_dict()
                assert all(isinstance(v, int) for v in counters.values())
        else:
            # The site was never hit often enough: results must be the
            # un-faulted rows exactly.
            assert result.sorted_rows() == baseline(name, mode)

    @pytest.mark.parametrize("site", ["qe", "reducer"])
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_optimizer_fault_recovers_under_fallback(self, name, site):
        plan = FaultPlan([FaultSpec(site=site, kind="error")])
        system = SmartIceberg(
            BATTING, fault_plan=plan, degradation="fallback"
        )
        result = system.execute(QUERIES[name])
        assert result.sorted_rows() == baseline(name, "row")
        if plan.fired(0):
            assert result.stats.degradations

    @pytest.mark.parametrize("name", ["Q1", "Q5"])
    def test_seeded_slowdowns_are_replayable(self, name):
        """Same seed, same query: identical virtual-time profile."""
        def run(seed):
            plan = FaultPlan(
                [
                    FaultSpec(
                        site="inner-eval", kind="slow", probability=0.4,
                        delay_seconds=3.0, times=None,
                    )
                ],
                seed=seed,
            )
            SmartIceberg(BATTING, fault_plan=plan).execute(QUERIES[name])
            return plan.hits("inner-eval"), plan.fired(0)

        assert run(42) == run(42)
