"""Unit tests for the runtime lock-order watchdog."""

import threading

import pytest

from repro.testing.lockwatch import LockOrderError, LockOrderWatchdog, WatchedLock


@pytest.fixture
def watchdog():
    return LockOrderWatchdog()


class TestOrderTracking:
    def test_consistent_order_records_edge_no_inversion(self, watchdog):
        a = watchdog.wrap(threading.Lock(), "A")
        b = watchdog.wrap(threading.Lock(), "B")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert watchdog.inversions == []
        assert ("A", "B") in watchdog.witnessed_edges()
        assert ("B", "A") not in watchdog.witnessed_edges()
        watchdog.assert_no_inversions()

    def test_abba_inversion_detected(self, watchdog):
        a = watchdog.wrap(threading.Lock(), "A")
        b = watchdog.wrap(threading.Lock(), "B")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert len(watchdog.inversions) == 1
        assert "'A'" in watchdog.inversions[0]
        assert "'B'" in watchdog.inversions[0]
        with pytest.raises(LockOrderError):
            watchdog.assert_no_inversions()

    def test_transitive_inversion_detected(self, watchdog):
        # A -> B and B -> C witnessed; then C -> A closes a 3-cycle
        # even though A and C were never directly nested before.
        a = watchdog.wrap(threading.Lock(), "A")
        b = watchdog.wrap(threading.Lock(), "B")
        c = watchdog.wrap(threading.Lock(), "C")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:
                pass
        assert len(watchdog.inversions) == 1

    def test_strict_mode_raises_at_acquisition(self):
        watchdog = LockOrderWatchdog(strict=True)
        a = watchdog.wrap(threading.Lock(), "A")
        b = watchdog.wrap(threading.Lock(), "B")
        with a:
            with b:
                pass
        with pytest.raises(LockOrderError):
            with b:
                with a:
                    pass

    def test_disjoint_locks_no_edges(self, watchdog):
        a = watchdog.wrap(threading.Lock(), "A")
        b = watchdog.wrap(threading.Lock(), "B")
        with a:
            pass
        with b:
            pass
        assert watchdog.witnessed_edges() == {}
        assert watchdog.acquisitions == 2


class TestReentrancy:
    def test_rlock_reacquire_is_not_an_edge(self, watchdog):
        lock = watchdog.wrap(threading.RLock(), "R")
        with lock:
            with lock:
                pass
        assert watchdog.inversions == []
        assert watchdog.witnessed_edges() == {}

    def test_two_instances_same_name_flagged(self, watchdog):
        first = watchdog.wrap(threading.RLock(), "Entry.lock")
        second = watchdog.wrap(threading.RLock(), "Entry.lock")
        with first:
            with second:
                pass
        assert len(watchdog.inversions) == 1
        assert "Entry.lock" in watchdog.inversions[0]


class TestConditionSupport:
    def test_wait_releases_held_stack(self, watchdog):
        condition = watchdog.wrap(threading.Condition(), "C")
        other = watchdog.wrap(threading.Lock(), "O")
        started = threading.Event()
        crossed = threading.Event()

        def waiter():
            with condition:
                started.set()
                condition.wait_for(crossed.is_set, timeout=5.0)

        thread = threading.Thread(target=waiter)
        thread.start()
        started.wait(5.0)
        # While the waiter sleeps inside wait_for, its condition is
        # *released* — this acquisition must not witness C -> O.
        with other:
            pass
        with condition:
            crossed.set()
            condition.notify_all()
        thread.join(5.0)
        assert not thread.is_alive()
        assert ("C", "O") not in watchdog.witnessed_edges()
        assert watchdog.inversions == []

    def test_notify_passthrough(self, watchdog):
        condition = watchdog.wrap(threading.Condition(), "C")
        with condition:
            condition.notify()
            condition.notify_all()
        assert watchdog.inversions == []


class TestWrapping:
    def test_wrap_is_idempotent(self, watchdog):
        inner = threading.Lock()
        once = watchdog.wrap(inner, "A")
        twice = watchdog.wrap(once, "A")
        assert twice is once

    def test_wrap_attr_replaces_in_place(self, watchdog):
        class Box:
            def __init__(self):
                self._lock = threading.Lock()

        box = Box()
        wrapped = watchdog.wrap_attr(box, "_lock", "Box._lock")
        assert box._lock is wrapped
        assert isinstance(box._lock, WatchedLock)
        with box._lock:
            pass
        assert watchdog.acquisitions == 1

    def test_lock_factory_produces_watched_locks(self, watchdog):
        factory = watchdog.lock_factory("Entry.lock")
        lock = factory()
        assert isinstance(lock, WatchedLock)
        assert lock.name == "Entry.lock"
        with lock:
            pass
        assert watchdog.acquisitions == 1

    def test_nonblocking_failed_acquire_not_recorded(self, watchdog):
        lock = watchdog.wrap(threading.Lock(), "A")
        lock._inner.acquire()
        try:
            assert lock.acquire(blocking=False) is False
            assert watchdog.acquisitions == 0
        finally:
            lock._inner.release()
