"""Tests for the synthetic data generators."""


from repro.storage import Database
from repro.workloads.baseball import (
    BaseballConfig,
    STAT_COLUMNS,
    generate_seasons,
    load_unpivoted,
    make_batting_db,
    unpivot_careers,
)
from repro.workloads.basket import (
    BasketConfig,
    generate_baskets,
    load_discount_schema,
    make_basket_db,
)
from repro.workloads.products import ProductConfig, generate_products, make_product_db


class TestBaseball:
    def test_deterministic(self):
        config = BaseballConfig(n_rows=500, seed=5)
        assert generate_seasons(config) == generate_seasons(config)

    def test_different_seeds_differ(self):
        a = generate_seasons(BaseballConfig(n_rows=500, seed=1))
        b = generate_seasons(BaseballConfig(n_rows=500, seed=2))
        assert a != b

    def test_row_count_exact(self):
        assert len(generate_seasons(BaseballConfig(n_rows=777))) == 777

    def test_stats_nonnegative(self):
        for row in generate_seasons(BaseballConfig(n_rows=300)):
            assert all(value >= 0 for value in row[4:])

    def test_composite_key_unique(self):
        rows = generate_seasons(BaseballConfig(n_rows=1000))
        keys = [(r[0], r[1], r[2]) for r in rows]
        assert len(set(keys)) == len(keys)

    def test_correlation_structure(self):
        """(h, hr) strongly correlated; (hr, sb) weakly (Figure 2)."""
        import math

        rows = generate_seasons(BaseballConfig(n_rows=3000))

        def pearson(i, j):
            xs = [r[i] for r in rows]
            ys = [r[j] for r in rows]
            mx, my = sum(xs) / len(xs), sum(ys) / len(ys)
            cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
            vx = sum((x - mx) ** 2 for x in xs)
            vy = sum((y - my) ** 2 for y in ys)
            return cov / math.sqrt(vx * vy)

        h_hr = pearson(4, 5)
        hr_sb = pearson(5, 7)
        assert h_hr > 0.5
        assert abs(hr_sb) < h_hr - 0.2

    def test_load_batting_declares_metadata(self):
        db = make_batting_db(BaseballConfig(n_rows=200))
        assert db.is_superkey("batting", ["playerid", "year", "round"])
        for column in STAT_COLUMNS:
            assert db.is_nonnegative("batting", column)
        assert db.table("batting").find_sorted_index("b_h") is not None

    def test_unpivot_preserves_totals(self):
        seasons = generate_seasons(BaseballConfig(n_rows=200))
        rows = unpivot_careers(seasons)
        total_h_direct = sum(r[4] for r in seasons)
        total_h_unpivot = sum(r[3] for r in rows if r[2] == "b_h")
        assert total_h_direct == total_h_unpivot

    def test_unpivot_category_fd(self):
        rows = unpivot_careers(generate_seasons(BaseballConfig(n_rows=200)))
        by_id = {}
        for pid, category, _, _ in rows:
            assert by_id.setdefault(pid, category) == category

    def test_load_unpivoted(self):
        db = Database()
        load_unpivoted(db, BaseballConfig(n_rows=200))
        assert db.fds("perf").determines(["id"], ["category"])
        assert len(db.table("perf")) > 0


class TestBasket:
    def test_deterministic(self):
        config = BasketConfig(n_baskets=100, seed=9)
        assert generate_baskets(config) == generate_baskets(config)

    def test_no_duplicate_items_per_basket(self):
        rows = generate_baskets(BasketConfig(n_baskets=200))
        assert len(set(rows)) == len(rows)

    def test_planted_pairs_frequent(self):
        config = BasketConfig(
            n_baskets=400, n_planted_pairs=2, planted_support=50, seed=3
        )
        rows = generate_baskets(config)
        from collections import Counter

        per_basket = {}
        for bid, item in rows:
            per_basket.setdefault(bid, set()).add(item)
        pair_counts = Counter()
        for items in per_basket.values():
            for a in items:
                for b in items:
                    if a < b:
                        pair_counts[(a, b)] += 1
        assert pair_counts.most_common(1)[0][1] >= 25

    def test_make_basket_db(self):
        db = make_basket_db(BasketConfig(n_baskets=50))
        assert db.has_table("basket")
        assert db.primary_key("basket") == ("bid", "item")

    def test_discount_schema(self):
        db = Database()
        load_discount_schema(db, n_baskets=40)
        assert db.has_table("dbasket") and db.has_table("discount")
        assert db.is_superkey("discount", ["did"])


class TestProducts:
    def test_deterministic(self):
        config = ProductConfig(n_products=50, seed=2)
        assert generate_products(config) == generate_products(config)

    def test_one_row_per_attribute(self):
        config = ProductConfig(n_products=50)
        rows = generate_products(config)
        assert len(rows) == 50 * len(config.attributes)

    def test_category_functionally_determined(self):
        rows = generate_products(ProductConfig(n_products=80))
        by_id = {}
        for pid, category, _, _ in rows:
            assert by_id.setdefault(pid, category) == category

    def test_make_product_db_metadata(self):
        db = make_product_db(ProductConfig(n_products=30))
        assert db.fds("product").determines(["id"], ["category"])
        assert db.is_nonnegative("product", "val")
