"""Tests for the paper's query templates."""

import pytest

from repro.sql.parser import parse
from repro.workloads.queries import (
    complex_query,
    discount_query,
    figure1_queries,
    market_basket_query,
    pairs_query,
    player_skyband_query,
    skyband_query,
)


class TestTemplatesParse:
    @pytest.mark.parametrize(
        "sql",
        [
            skyband_query(),
            skyband_query(strict_form="strong"),
            pairs_query(),
            pairs_query(agg="SUM"),
            complex_query(),
            market_basket_query(),
            discount_query(),
            player_skyband_query(),
        ],
    )
    def test_parses(self, sql):
        parse(sql)

    def test_skyband_parameters_embedded(self):
        sql = skyband_query("b_hr", "b_sb", k=123)
        assert "b_hr" in sql and "<= 123" in sql

    def test_skyband_bad_form_rejected(self):
        with pytest.raises(ValueError):
            skyband_query(strict_form="odd")

    def test_pairs_bad_agg_rejected(self):
        with pytest.raises(ValueError):
            pairs_query(agg="MEDIAN")

    def test_pairs_thresholds(self):
        sql = pairs_query(c=7, k=33)
        assert ">= 7" in sql and "<= 33" in sql


class TestFigure1Suite:
    def test_eight_queries(self):
        queries = figure1_queries()
        assert sorted(queries) == [f"Q{i}" for i in range(1, 9)]

    def test_templates_assigned(self):
        queries = figure1_queries()
        assert queries["Q1"].template == "skyband"
        assert queries["Q4"].template == "pairs"
        assert queries["Q8"].template == "skyband"

    def test_apriori_flags_match_paper(self):
        """'generalized a-priori does not apply to Q1, Q2, Q3, and Q8'."""
        queries = figure1_queries()
        for name in ("Q1", "Q2", "Q3", "Q8"):
            assert not queries[name].apriori_applies
        for name in ("Q4", "Q5", "Q6", "Q7"):
            assert queries[name].apriori_applies

    def test_all_parse(self):
        for query in figure1_queries().values():
            parse(query.sql)
